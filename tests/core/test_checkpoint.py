"""Wave checkpointing: bit-identity, content keys, verify-on-read.

The contract: with ``REPRO_CHECKPOINT=1`` the executor persists each
completed ready-wave job's output into the content-addressed blob tier
and restores it on the next identical run — and nothing observable may
change.  Rows, composites, simulated times, per-job metrics (including
the query-name-dependent ``job_name``) must be bit-identical whether a
wave was computed or restored, whether checkpointing is on or off, and
whichever query *name* originally wrote the checkpoint.  Corruption can
only ever cost a recompute.
"""

import dataclasses

import pytest

from repro.core.executor import (
    PlanExecutor,
    checkpoint_counters,
    reset_checkpoint_counters,
)
from repro.core.planner import ThetaJoinPlanner
from repro.mapreduce.config import ClusterConfig
from repro.mapreduce.runtime import SimulatedCluster
from repro.relational.query import JoinQuery


@pytest.fixture(autouse=True)
def _checkpoint_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_CHECKPOINT", "1")
    reset_checkpoint_counters()
    yield tmp_path / "cache"
    reset_checkpoint_counters()


def run(query, config=None, on_wave=None):
    config = config or ClusterConfig()
    plan = ThetaJoinPlanner(config).plan(query)
    outcome = PlanExecutor(SimulatedCluster(config), on_wave=on_wave).execute(
        plan, query
    )
    return outcome


def digest(outcome):
    """Everything observable, comparable across runs."""
    report = outcome.report
    return (
        tuple(map(tuple, outcome.result.rows)),
        tuple(outcome.composites),
        report.makespan_s,
        report.merge_time_s,
        report.output_records,
        tuple(dataclasses.astuple(m) for m in report.job_metrics),
    )


class TestBitIdentity:
    def test_off_by_default(self, three_way_query, monkeypatch, _checkpoint_env):
        monkeypatch.delenv("REPRO_CHECKPOINT")
        outcome = run(three_way_query)
        assert outcome.report.checkpoint_stores == 0
        assert checkpoint_counters()["stores"] == 0
        assert not (_checkpoint_env / "checkpoints").exists()

    def test_cold_warm_and_off_runs_are_bit_identical(
        self, triangle_query, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CHECKPOINT", "0")
        reference = digest(run(triangle_query))
        monkeypatch.setenv("REPRO_CHECKPOINT", "1")
        cold = run(triangle_query)
        assert digest(cold) == reference
        assert cold.report.checkpoint_stores == cold.report.num_jobs
        assert cold.report.checkpoint_hits == 0
        warm = run(triangle_query)
        assert digest(warm) == reference
        assert warm.report.checkpoint_hits == warm.report.num_jobs
        assert warm.report.checkpoint_stores == 0

    def test_cross_query_name_reuse_is_bit_identical(self, three_way_query):
        run(three_way_query)  # cold: writes checkpoints under this name
        renamed = JoinQuery(
            "renamed",
            dict(three_way_query.relations),
            list(three_way_query.conditions),
        )
        cold_renamed = digest(run_without_cache(renamed))
        warm = run(renamed)
        # Checkpoint keys are content-based: a differently-named query
        # with identical content restores the other query's waves...
        assert warm.report.checkpoint_hits == warm.report.num_jobs
        # ...and the restore rewrites every name-dependent field, so the
        # outcome matches what "renamed" would have computed itself.
        assert digest(warm) == cold_renamed
        assert all(
            m.job_name.startswith("renamed:") for m in warm.report.job_metrics
        )


def run_without_cache(query):
    """A fresh no-checkpoint reference run (for cross-name comparison)."""
    import os

    saved = os.environ.pop("REPRO_CHECKPOINT", None)
    try:
        return run(query)
    finally:
        if saved is not None:
            os.environ["REPRO_CHECKPOINT"] = saved


class TestSafety:
    def test_corrupt_blob_recomputes_not_wrong_answer(
        self, triangle_query, _checkpoint_env
    ):
        reference = digest(run(triangle_query))
        # Flip a byte in every checkpoint payload on disk.
        blob_files = list((_checkpoint_env / "blobs").rglob("*.blob"))
        assert blob_files
        for path in blob_files:
            raw = bytearray(path.read_bytes())
            raw[len(raw) // 2] ^= 0xFF
            path.write_bytes(bytes(raw))
        reset_checkpoint_counters()
        again = run(triangle_query)
        assert digest(again) == reference
        # Verify-on-read caught every corruption: zero hits, all stores.
        counters = checkpoint_counters()
        assert counters["hits"] == 0
        assert again.report.checkpoint_hits == 0
        assert again.report.checkpoint_stores == again.report.num_jobs

    def test_oversize_outputs_are_skipped(self, triangle_query, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINT_MAX_BYTES", "64")
        reference = digest(run(triangle_query))
        counters = checkpoint_counters()
        assert counters["stores"] == 0
        assert counters["skipped_oversize"] > 0
        # Nothing cached, so the next run recomputes — identically.
        assert digest(run(triangle_query)) == reference

    def test_noise_disables_checkpointing(self, three_way_query):
        noisy = ClusterConfig(noise_sigma=0.05)
        outcome = run(three_way_query, config=noisy)
        # A restored wave would replay another run's noise draw; the
        # gate keeps noisy clusters checkpoint-free.
        assert outcome.report.checkpoint_stores == 0
        assert checkpoint_counters()["stores"] == 0


class TestWaveNotifications:
    def test_on_wave_fires_per_job_with_restored_flags(self, triangle_query):
        events = []

        def on_wave(job_id, digest_, restored):
            events.append((job_id, digest_, restored))

        cold = run(triangle_query, on_wave=on_wave)
        assert len(events) == cold.report.num_jobs
        assert all(not restored for _, _, restored in events)
        cold_digests = {job_id: d for job_id, d, _ in events}
        events.clear()
        warm = run(triangle_query, on_wave=on_wave)
        assert len(events) == warm.report.num_jobs
        assert all(restored for _, _, restored in events)
        # Restored waves carry the digests the cold run stored.
        assert {job_id: d for job_id, d, _ in events} == cold_digests
