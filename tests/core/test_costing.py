"""Tests for candidate-job costing (strategy choice, kR, skew awareness)."""

import pytest

from repro.core.cost_model import MRJCostModel
from repro.core.costing import CandidateJobCosting
from repro.core.join_graph import JoinGraph
from repro.core.plan import STRATEGY_EQUI, STRATEGY_EQUICHAIN, STRATEGY_HYPERCUBE
from repro.errors import PlanningError
from repro.mapreduce.config import ClusterConfig
from repro.relational.predicates import JoinCondition
from repro.relational.query import JoinQuery
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.statistics import StatisticsCatalog
from repro.utils import make_rng


def rel(name, rows, seed=0, groups=8):
    rng = make_rng("costing-test", name, seed)
    return Relation(
        name,
        Schema.of("id:int", "v:int", "g:int"),
        [(i, rng.randint(0, 60), rng.randint(0, groups - 1)) for i in range(rows)],
    )


def costing_for(query):
    config = ClusterConfig()
    catalog = StatisticsCatalog()
    for relation in query.relations.values():
        if relation.name not in catalog:
            catalog.add_relation(relation)
    graph = JoinGraph.from_query(query)
    return CandidateJobCosting(
        query, graph, catalog, MRJCostModel.for_cluster(config), config.total_units
    )


@pytest.fixture
def chain_query():
    return JoinQuery(
        "chain",
        {"a": rel("A", 50), "b": rel("B", 45, seed=1), "c": rel("C", 40, seed=2)},
        [
            JoinCondition.parse(1, "a.v < b.v"),
            JoinCondition.parse(2, "b.g = c.g"),
        ],
    )


class TestStrategySelection:
    def test_pure_equi_single_edge(self, chain_query):
        costing = costing_for(chain_query)
        blueprint = costing.blueprint_for_path((2,))
        assert blueprint.strategy == STRATEGY_EQUI

    def test_theta_single_edge_is_hypercube(self, chain_query):
        costing = costing_for(chain_query)
        blueprint = costing.blueprint_for_path((1,))
        assert blueprint.strategy == STRATEGY_HYPERCUBE
        assert blueprint.partition_bits >= 1

    def test_key_covered_multiway_prefers_equichain(self):
        query = JoinQuery(
            "keys",
            {"a": rel("A", 60), "b": rel("B", 55, seed=1), "c": rel("C", 50, seed=2)},
            [
                JoinCondition.parse(1, "a.g = b.g", "a.v < b.v"),
                JoinCondition.parse(2, "b.g = c.g"),
            ],
        )
        costing = costing_for(query)
        blueprint = costing.blueprint_for_path((1, 2))
        assert blueprint.strategy == STRATEGY_EQUICHAIN

    def test_theta_multiway_is_hypercube(self, chain_query):
        costing = costing_for(chain_query)
        # Path (1, 2): theta + equi mixed; no single key class covers a,
        # so the hypercube must be chosen.
        blueprint = costing.blueprint_for_path((1, 2))
        assert blueprint.strategy == STRATEGY_HYPERCUBE


class TestBlueprintContents:
    def test_cost_positive_and_cached(self, chain_query):
        costing = costing_for(chain_query)
        first = costing.blueprint_for_path((1,))
        again = costing.blueprint(frozenset({1}))
        assert first is again
        assert first.est_time_s > 0

    def test_blueprint_for_labels_nonpath(self):
        """A star-shaped (non-path) condition set must still be priced."""
        query = JoinQuery(
            "star",
            {
                "hub": rel("HUB", 30),
                "x": rel("X", 25, seed=1),
                "y": rel("Y", 20, seed=2),
                "z": rel("Z", 15, seed=3),
            },
            [
                JoinCondition.parse(1, "hub.v < x.v"),
                JoinCondition.parse(2, "hub.v < y.v"),
                JoinCondition.parse(3, "hub.v < z.v"),
            ],
        )
        costing = costing_for(query)
        blueprint = costing.blueprint_for_labels((1, 2, 3))
        assert set(blueprint.dim_aliases) == {"hub", "x", "y", "z"}
        assert blueprint.est_time_s > 0

    def test_output_rows_reflect_selectivity(self, chain_query):
        costing = costing_for(chain_query)
        theta = costing.blueprint_for_path((1,))
        # a.v < b.v over uniform values: about half the cross product.
        cross = 50 * 45
        assert 0.2 * cross < theta.output_rows < 0.8 * cross

    def test_missing_blueprint_raises(self, chain_query):
        costing = costing_for(chain_query)
        with pytest.raises(PlanningError):
            costing.blueprint(frozenset({99}))

    def test_evaluator_protocol(self, chain_query):
        costing = costing_for(chain_query)
        cost = costing((1,))
        assert cost.time_s > 0
        assert cost.reducers >= 1


class TestStepPricing:
    def test_equi_step(self, chain_query):
        costing = costing_for(chain_query)
        seconds, strategy, reducers = costing.pairwise_step_cost(
            left_rows=100, left_width=64, new_alias="c",
            conditions=[chain_query.condition(2)], output_rows=500,
        )
        assert strategy == STRATEGY_EQUI
        assert seconds > 0 and reducers >= 1

    def test_theta_step(self, chain_query):
        costing = costing_for(chain_query)
        seconds, strategy, reducers = costing.pairwise_step_cost(
            left_rows=100, left_width=64, new_alias="b",
            conditions=[chain_query.condition(1)], output_rows=2000,
        )
        assert strategy == "onebucket"
        assert seconds > 0

    def test_bigger_intermediate_costs_more(self, chain_query):
        costing = costing_for(chain_query)
        cheap, _, _ = costing.pairwise_step_cost(
            100, 64, "c", [chain_query.condition(2)], 100
        )
        heavy, _, _ = costing.pairwise_step_cost(
            1_000_000, 64, "c", [chain_query.condition(2)], 100
        )
        assert heavy > cheap
