"""Tests for kR selection via Equation 10."""

import pytest

from repro.core.partitioner import HypercubePartitioner
from repro.core.reducer_selection import (
    LAMBDA_DEFAULT,
    best_kr_for_map_output,
    candidate_reducer_counts,
    choose_reducer_count,
    delta_value,
    evaluate_reducer_counts,
)
from repro.errors import PartitionError


class TestDelta:
    def test_lambda_default_in_paper_interval(self):
        # Section 5.1 footnote: lambda observed in (0.38, 0.46), fixed 0.4.
        assert 0.38 < LAMBDA_DEFAULT < 0.46

    def test_delta_blends_both_terms(self):
        summary = HypercubePartitioner([100, 100], 8).summary()
        pure_network = delta_value(summary, lam=1.0)
        pure_work = delta_value(summary, lam=0.0)
        blended = delta_value(summary, lam=0.4)
        assert min(pure_network, pure_work) <= blended <= max(
            pure_network, pure_work
        )

    def test_invalid_lambda(self):
        summary = HypercubePartitioner([10, 10], 2).summary()
        with pytest.raises(PartitionError):
            delta_value(summary, lam=1.5)


class TestCandidates:
    def test_powers_of_two_plus_budget(self):
        assert candidate_reducer_counts(10) == [1, 2, 4, 8, 10]
        assert candidate_reducer_counts(16) == [1, 2, 4, 8, 16]
        assert candidate_reducer_counts(1) == [1]

    def test_invalid_budget(self):
        with pytest.raises(PartitionError):
            candidate_reducer_counts(0)


class TestChoice:
    def test_choice_within_budget(self):
        choice = choose_reducer_count([200, 200], 32)
        assert 1 <= choice.num_reducers <= 32

    def test_workload_term_pulls_kr_up(self):
        """With lambda -> 0 (only per-reducer work matters) the chosen kR
        must be at least the choice at lambda -> 1 (only network)."""
        cards = [500, 500]
        work_choice = choose_reducer_count(cards, 64, lam=0.01)
        net_choice = choose_reducer_count(cards, 64, lam=0.99)
        assert work_choice.num_reducers >= net_choice.num_reducers

    def test_evaluations_cover_all_candidates(self):
        choices = evaluate_reducer_counts([100, 100], 16)
        assert [c.num_reducers for c in choices] == [1, 2, 4, 8, 16]

    def test_delta_of_choice_is_minimum(self):
        cards = [300, 300, 300]
        choices = evaluate_reducer_counts(cards, 32)
        best = choose_reducer_count(cards, 32)
        assert best.delta == min(c.delta for c in choices)

    def test_duplication_monotone_in_kr(self):
        choices = evaluate_reducer_counts([256, 256], 32)
        dups = [c.duplication_score for c in choices]
        assert dups == sorted(dups)

    def test_work_per_reducer_monotone_down(self):
        choices = evaluate_reducer_counts([256, 256], 32)
        work = [c.combinations_per_reducer for c in choices]
        assert work == sorted(work, reverse=True)


class TestFittingCurve:
    def test_fig7a_shape_monotone(self):
        """Best kR grows with map output volume (Figure 7a's fitting curve)."""
        ks = [best_kr_for_map_output(mb) for mb in (1, 10, 100, 1000, 10000)]
        assert ks == sorted(ks)
        assert ks[0] >= 1
        assert ks[-1] <= 64

    def test_tiny_output_wants_one_reducer(self):
        assert best_kr_for_map_output(0) == 1
