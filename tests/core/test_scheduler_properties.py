"""Property-based tests for the malleable-task scheduler (Section 4.2)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheduler import MalleableJob, MalleableScheduler


@st.composite
def job_sets(draw):
    """Random malleable job sets with monotone time-vs-units profiles."""
    num_jobs = draw(st.integers(min_value=1, max_value=8))
    total_units = draw(st.sampled_from([4, 8, 16, 32]))
    jobs = []
    for index in range(num_jobs):
        base = draw(st.floats(min_value=1.0, max_value=500.0))
        # Diminishing-returns profile over power-of-two allotments.
        efficiency = draw(st.floats(min_value=0.5, max_value=1.0))
        profile = {}
        units = 1
        seconds = base
        while units <= total_units:
            profile[units] = seconds
            seconds = seconds / (1.0 + efficiency)
            units *= 2
        jobs.append(MalleableJob(f"j{index}", profile))
    return jobs, total_units


class TestScheduleInvariants:
    @given(job_sets())
    @settings(max_examples=60, deadline=None)
    def test_every_job_placed_exactly_once(self, case):
        jobs, total_units = case
        schedule = MalleableScheduler(total_units).schedule(jobs)
        assert sorted(j.job_id for j in schedule.jobs) == sorted(
            j.job_id for j in jobs
        )

    @given(job_sets())
    @settings(max_examples=60, deadline=None)
    def test_unit_budget_never_exceeded(self, case):
        """At every job boundary, concurrently running jobs fit in kP."""
        jobs, total_units = case
        schedule = MalleableScheduler(total_units).schedule(jobs)
        events = sorted({j.start_s for j in schedule.jobs})
        for t in events:
            in_flight = sum(
                j.units for j in schedule.jobs if j.start_s <= t < j.end_s
            )
            assert in_flight <= total_units

    @given(job_sets())
    @settings(max_examples=60, deadline=None)
    def test_durations_match_allotments(self, case):
        jobs, total_units = case
        by_id = {j.job_id: j for j in jobs}
        schedule = MalleableScheduler(total_units).schedule(jobs)
        for placed in schedule.jobs:
            assert placed.duration_s == by_id[placed.job_id].time_at(placed.units)

    @given(job_sets())
    @settings(max_examples=60, deadline=None)
    def test_makespan_bounds(self, case):
        """Lower bound: no job can beat its best possible time.  Upper
        bound: the list-scheduling 2-approximation against the sequential
        full-allotment schedule (itself an upper bound on OPT)."""
        jobs, total_units = case
        schedule = MalleableScheduler(total_units).schedule(jobs)
        best_single = max(min(j.time_by_units.values()) for j in jobs)
        sequential = sum(j.time_at(total_units) for j in jobs)
        assert schedule.makespan_s >= best_single - 1e-9
        assert schedule.makespan_s <= 2.0 * sequential + 1e-9

    @given(job_sets())
    @settings(max_examples=40, deadline=None)
    def test_more_units_never_hurt(self, case):
        jobs, total_units = case
        small = MalleableScheduler(total_units).schedule(jobs)
        large = MalleableScheduler(total_units * 2).schedule(jobs)
        assert large.makespan_s <= small.makespan_s + 1e-9

    @given(job_sets())
    @settings(max_examples=40, deadline=None)
    def test_work_conservation(self, case):
        """Total unit-seconds of the schedule equals the sum over jobs of
        allotment x duration (no phantom work)."""
        jobs, total_units = case
        schedule = MalleableScheduler(total_units).schedule(jobs)
        for placed in schedule.jobs:
            assert placed.start_s >= 0
            assert placed.units >= 1
            assert placed.units <= total_units
