"""Tests for cost-model calibration from probe jobs (Section 6.2)."""

import pytest

from repro.core.calibration import (
    calibrate,
    collect_probes,
    fit_parameters,
    run_self_join_probe,
)
from repro.core.cost_model import CostModelParameters
from repro.errors import PlanningError
from repro.mapreduce.config import ClusterConfig
from repro.mapreduce.runtime import SimulatedCluster


@pytest.fixture(scope="module")
def result():
    cluster = SimulatedCluster(ClusterConfig().with_noise(0.04))
    return calibrate(cluster, row_counts=(30, 60), reducer_counts=(2, 8, 24))


class TestCalibration:
    def test_recovers_network_rate(self, result):
        truth = CostModelParameters.from_config(ClusterConfig())
        assert result.params.network_s_per_byte == pytest.approx(
            truth.network_s_per_byte, rel=0.25
        )

    def test_recovers_connection_overhead_q(self, result):
        truth = CostModelParameters.from_config(ClusterConfig())
        assert result.params.connection_s == pytest.approx(
            truth.connection_s, rel=0.3
        )

    def test_recovers_write_rate(self, result):
        truth = CostModelParameters.from_config(ClusterConfig())
        assert result.params.write_s_per_byte == pytest.approx(
            truth.write_s_per_byte, rel=0.3
        )

    def test_p_samples_monotone_in_output(self, result):
        """Figure 7b: the spill variable p grows with map output volume."""
        xs = [x for x, _ in result.p_samples]
        ps = [p for _, p in result.p_samples]
        assert xs == sorted(xs)
        assert ps[-1] >= ps[0]

    def test_q_samples_present(self, result):
        assert result.q_samples
        assert all(q > 0 for _, q in result.q_samples)

    def test_needs_enough_observations(self):
        base = CostModelParameters.from_config(ClusterConfig())
        with pytest.raises(PlanningError):
            fit_parameters([], base)


class TestProbes:
    def test_self_join_probe_runs(self):
        cluster = SimulatedCluster(ClusterConfig())
        metrics = run_self_join_probe(cluster, rows=24, num_reducers=4)
        assert metrics.output_records > 0
        assert metrics.num_reduce_tasks == 4

    def test_collect_probes_sweeps(self):
        cluster = SimulatedCluster(ClusterConfig())
        observations = collect_probes(
            cluster, row_counts=(20,), reducer_counts=(2, 4), duplications=(1,)
        )
        assert len(observations) == 2
        assert {o.num_reducers for o in observations} == {2, 4}
