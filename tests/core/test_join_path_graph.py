"""Tests for no-edge-repeating path enumeration and Alg. 2's pruning.

Includes a reconstruction of the paper's Figure 1 example: the path sets
between relation pairs listed in the adjacency matrix must all be found
by the enumerator.
"""

import pytest

from repro.core.join_graph import JoinGraph
from repro.core.join_path_graph import (
    CandidateCost,
    build_join_path_graph,
    enumerate_paths,
)
from repro.errors import PlanningError

from tests.core.test_join_graph import fig1_graph


def flat_evaluator(path):
    """Unit-cost evaluator: every candidate costs its hop count."""
    return CandidateCost(time_s=float(len(path)), reducers=len(path))


class TestEnumeration:
    def test_single_edge_paths_always_present(self):
        graph = fig1_graph()
        paths = enumerate_paths(graph, max_hops=1)
        assert len(paths) == 6

    def test_fig1_r1_r2_paths(self):
        """Figure 1's cell (R1, R2) lists exactly these label sets:
        {1}, {3,2}, {1,2,3}(circuit via R3... as sub-path), {3,4,6,5,2}."""
        graph = fig1_graph()
        paths = enumerate_paths(graph)
        r1r2 = {
            frozenset(p)
            for a, b, p in paths
            if {a, b} == {"R1", "R2"}
        }
        for expected in [
            frozenset({1}),
            frozenset({2, 3}),
            frozenset({2, 3, 4, 5, 6}),
        ]:
            assert expected in r1r2

    def test_fig1_r3_r4_paths(self):
        """Cell (R3, R4): {4}, {6,5}, plus longer detours through R1/R2."""
        graph = fig1_graph()
        paths = enumerate_paths(graph)
        r3r4 = {frozenset(p) for a, b, p in paths if {a, b} == {"R3", "R4"}}
        assert frozenset({4}) in r3r4
        assert frozenset({5, 6}) in r3r4

    def test_no_edge_repeats_within_path(self):
        graph = fig1_graph()
        for _, _, path in enumerate_paths(graph):
            assert len(path) == len(set(path))

    def test_max_hops_limits_length(self):
        graph = fig1_graph()
        for _, _, path in enumerate_paths(graph, max_hops=2):
            assert len(path) <= 2

    def test_paths_are_connected_edge_sequences(self):
        graph = fig1_graph()
        for start, end, path in enumerate_paths(graph):
            current = start
            for cid in path:
                current = graph.other_endpoint(cid, current)
            assert current == end


class TestBuildJoinPathGraph:
    def test_sufficient_without_pruning(self):
        graph = fig1_graph()
        gjp = build_join_path_graph(graph, flat_evaluator, apply_pruning=False)
        assert gjp.is_sufficient()
        assert gjp.pruned == 0

    def test_pruning_keeps_sufficiency(self):
        graph = fig1_graph()
        gjp = build_join_path_graph(graph, flat_evaluator)
        assert gjp.is_sufficient()

    def test_pruning_reduces_candidates(self):
        graph = fig1_graph()
        full = build_join_path_graph(graph, flat_evaluator, apply_pruning=False)
        pruned = build_join_path_graph(graph, flat_evaluator)
        assert len(pruned) <= len(full)
        # With linear costs, multi-hop paths are always substitutable by
        # their constituent single edges, so pruning bites hard.
        assert len(pruned) < len(full)

    def test_lemma1_respects_reducer_budget(self):
        """A multi-edge candidate needing FEWER reducers than the sum of
        its substitutes must survive (condition 3 of Lemma 1)."""
        graph = JoinGraph(["a", "b", "c"], {1: ("a", "b"), 2: ("b", "c")})

        def evaluator(path):
            if len(path) == 1:
                return CandidateCost(time_s=1.0, reducers=8)
            # More expensive but far fewer reducers than 8 + 8.
            return CandidateCost(time_s=3.0, reducers=2)

        gjp = build_join_path_graph(graph, evaluator)
        label_sets = {c.labels for c in gjp.candidates}
        assert frozenset({1, 2}) in label_sets

    def test_lemma1_prunes_dominated_candidate(self):
        graph = JoinGraph(["a", "b", "c"], {1: ("a", "b"), 2: ("b", "c")})

        def evaluator(path):
            if len(path) == 1:
                return CandidateCost(time_s=1.0, reducers=2)
            # Strictly worse than the two singles on every Lemma 1 axis.
            return CandidateCost(time_s=5.0, reducers=10)

        gjp = build_join_path_graph(graph, evaluator)
        label_sets = {c.labels for c in gjp.candidates}
        assert frozenset({1, 2}) not in label_sets
        assert gjp.pruned >= 1

    def test_covering_lookup(self):
        graph = fig1_graph()
        gjp = build_join_path_graph(graph, flat_evaluator)
        for cid in graph.edge_ids:
            covering = gjp.covering(cid)
            assert covering, f"condition {cid} uncovered"
            assert all(cid in c.labels for c in covering)

    def test_invalid_cost_rejected(self):
        with pytest.raises(PlanningError):
            CandidateCost(time_s=-1.0, reducers=1)
        with pytest.raises(PlanningError):
            CandidateCost(time_s=1.0, reducers=0)
