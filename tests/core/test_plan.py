"""Tests for execution-plan data structures and validation."""

import pytest

from repro.core.plan import (
    STRATEGY_HYPERCUBE,
    STRATEGY_ONEBUCKET,
    ExecutionPlan,
    InputRef,
    PlannedJob,
)
from repro.errors import PlanningError


def pj(job_id="j1", strategy=STRATEGY_ONEBUCKET, inputs=None, conditions=(1,),
       depends=()):
    return PlannedJob(
        job_id=job_id,
        strategy=strategy,
        inputs=inputs or (InputRef.base("a"), InputRef.base("b")),
        condition_ids=tuple(conditions),
        num_reducers=4,
        units=8,
        depends_on=tuple(depends),
    )


class TestInputRef:
    def test_base_and_job(self):
        assert InputRef.base("a").kind == "base"
        assert InputRef.job("j1").kind == "job"

    def test_invalid_kind(self):
        with pytest.raises(PlanningError):
            InputRef("what", "x")


class TestPlannedJob:
    def test_pairwise_strategy_enforced(self):
        with pytest.raises(PlanningError):
            pj(inputs=(InputRef.base("a"), InputRef.base("b"), InputRef.base("c")))

    def test_hypercube_allows_many_inputs(self):
        job = pj(
            strategy=STRATEGY_HYPERCUBE,
            inputs=(InputRef.base("a"), InputRef.base("b"), InputRef.base("c")),
        )
        assert len(job.inputs) == 3

    def test_needs_conditions(self):
        with pytest.raises(PlanningError):
            pj(conditions=())

    def test_unknown_strategy(self):
        with pytest.raises(PlanningError):
            pj(strategy="magic")

    def test_needs_two_inputs(self):
        with pytest.raises(PlanningError):
            pj(inputs=(InputRef.base("a"),))


class TestExecutionPlan:
    def plan_with(self, jobs):
        return ExecutionPlan(
            name="p", method="hive", query_name="q", jobs=jobs, total_units=16
        )

    def test_duplicate_ids_rejected(self):
        with pytest.raises(PlanningError):
            self.plan_with([pj("x"), pj("x")])

    def test_unknown_dependency_rejected(self):
        with pytest.raises(PlanningError):
            self.plan_with([pj("x", depends=("ghost",))])

    def test_unknown_job_input_rejected(self):
        with pytest.raises(PlanningError):
            self.plan_with(
                [pj("x", inputs=(InputRef.job("ghost"), InputRef.base("b")))]
            )

    def test_terminal_jobs(self):
        j1 = pj("j1")
        j2 = pj(
            "j2",
            inputs=(InputRef.job("j1"), InputRef.base("c")),
            conditions=(2,),
            depends=("j1",),
        )
        plan = self.plan_with([j1, j2])
        assert [j.job_id for j in plan.terminal_jobs()] == ["j2"]

    def test_covered_conditions(self):
        plan = self.plan_with([pj("j1", conditions=(1, 3))])
        assert plan.covered_condition_ids() == frozenset({1, 3})

    def test_describe_mentions_jobs(self):
        plan = self.plan_with([pj("j1")])
        text = plan.describe()
        assert "j1" in text and "onebucket" in text

    def test_job_lookup(self):
        plan = self.plan_with([pj("j1")])
        assert plan.job("j1").job_id == "j1"
        with pytest.raises(PlanningError):
            plan.job("nope")
