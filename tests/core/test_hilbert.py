"""Tests for the d-dimensional Hilbert curve, including hypothesis properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hilbert import (
    curve_length,
    index_to_point,
    point_to_index,
    walk,
)
from repro.errors import PartitionError


class TestBasics:
    def test_curve_length(self):
        assert curve_length(2, 2) == 16
        assert curve_length(3, 2) == 64
        assert curve_length(2, 3) == 64

    def test_2d_order_starts_at_origin(self):
        assert index_to_point(0, 2, 2) == (0, 0)

    def test_known_2d_first_quadrant(self):
        # The order-1 2D Hilbert curve visits (0,0),(0,1),(1,1),(1,0)
        # under Skilling's axis convention (up, right, down).
        points = [index_to_point(i, 1, 2) for i in range(4)]
        assert points[0] == (0, 0)
        assert points[-1][0] != points[0][0] or points[-1][1] != points[0][1]
        assert len(set(points)) == 4

    def test_invalid_arguments(self):
        with pytest.raises(PartitionError):
            index_to_point(-1, 2, 2)
        with pytest.raises(PartitionError):
            index_to_point(16, 2, 2)
        with pytest.raises(PartitionError):
            point_to_index((0,), 2, 2)
        with pytest.raises(PartitionError):
            point_to_index((4, 0), 2, 2)
        with pytest.raises(PartitionError):
            curve_length(0, 2)

    def test_walk_enumerates_everything(self):
        cells = list(walk(2, 2))
        assert len(cells) == 16
        assert len(set(cells)) == 16


@st.composite
def bits_dims(draw):
    dims = draw(st.integers(min_value=1, max_value=4))
    max_bits = {1: 8, 2: 5, 3: 3, 4: 2}[dims]
    bits = draw(st.integers(min_value=1, max_value=max_bits))
    return bits, dims


class TestProperties:
    @given(bits_dims(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_round_trip(self, bd, data):
        bits, dims = bd
        index = data.draw(
            st.integers(min_value=0, max_value=curve_length(bits, dims) - 1)
        )
        point = index_to_point(index, bits, dims)
        assert point_to_index(point, bits, dims) == index

    @given(bits_dims(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_adjacent_indices_are_adjacent_cells(self, bd, data):
        """The defining Hilbert property: consecutive curve positions are
        grid neighbours (Manhattan distance exactly 1)."""
        bits, dims = bd
        index = data.draw(
            st.integers(min_value=0, max_value=curve_length(bits, dims) - 2)
        )
        a = index_to_point(index, bits, dims)
        b = index_to_point(index + 1, bits, dims)
        assert sum(abs(x - y) for x, y in zip(a, b)) == 1

    @given(bits_dims())
    @settings(max_examples=25, deadline=None)
    def test_bijective_over_whole_grid(self, bd):
        bits, dims = bd
        n = curve_length(bits, dims)
        if n > 4096:
            n = 4096  # cap work; bijectivity of a prefix implies no dupes
        seen = {index_to_point(i, bits, dims) for i in range(n)}
        assert len(seen) == n

    @given(st.integers(min_value=1, max_value=5))
    @settings(max_examples=5, deadline=None)
    def test_1d_is_identity_like(self, bits):
        """In one dimension the curve must be monotone (it is the line)."""
        n = curve_length(bits, 1)
        points = [index_to_point(i, bits, 1)[0] for i in range(n)]
        assert points == sorted(points) or points == sorted(points, reverse=True)
