"""The coordinator kill-and-restart drill, across real processes.

The ISSUE-9 acceptance scenario: a ``repro serve`` subprocess running a
multi-wave cascade is SIGKILLed mid-query — after some waves were
checkpointed and journaled, before the query finished.  A second
coordinator started with ``--recover`` on the same journal must resume
the query under its original id, replay every already-checkpointed
wave from the blob tier (zero re-execution), and produce rows
bit-identical to a local serial reference.
"""

import time
from pathlib import Path

import pytest

from repro.cli import PLANNERS
from repro.core.executor import PlanExecutor
from repro.mapreduce.config import ClusterConfig
from repro.mapreduce.runtime import SimulatedCluster
from repro.relational.sql import parse_join_query
import repro
from repro.serve import chaos
from repro.serve.coordinator import spawn_service
from repro.storage import read_records
from repro.workloads import workload_relations

# A three-job cascade on the mobile workload: three sequential waves,
# so a mid-query kill can land with some (not all) waves persisted.
CASCADE_SQL = (
    "SELECT t3.id FROM table t1, table t2, table t3, table t4 "
    "WHERE t1.d = t2.d AND t1.bt <= t2.bt AND t2.bsc = t3.bsc "
    "AND t3.d = t4.d AND t3.bt <= t4.bt"
)


def serial_reference_rows():
    relations = workload_relations("mobile", 0, 0)
    query = parse_join_query(CASCADE_SQL, relations, name="reference")
    config = ClusterConfig()
    plan = PLANNERS["pig"](config).plan(query)
    outcome = PlanExecutor(SimulatedCluster(config)).execute(plan, query)
    return [tuple(row) for row in outcome.result.rows]


def wave_digests(journal_path, restored):
    records, _torn = read_records(journal_path)
    return {
        record["digest"]
        for record in records
        if record.get("kind") == "wave"
        and bool(record.get("restored")) is restored
    }


def test_sigkill_recover_resumes_from_checkpoint_frontier(tmp_path):
    journal_path = tmp_path / "serve.journal"
    env = {
        "REPRO_EXEC_BACKEND": "serial",
        "REPRO_CHECKPOINT": "1",
        "REPRO_CACHE_DIR": str(tmp_path / "cache"),
        "REPRO_JOURNAL_FSYNC": "1",
        # Widen the inter-wave window so the kill reliably lands after
        # two checkpointed waves, before the cascade finishes.
        "REPRO_WAVE_DELAY_S": "1.5",
    }
    proc, addr = spawn_service(
        extra_args=("--journal", str(journal_path)), env_extra=env
    )
    qid = None
    try:
        with repro.connect(addr, timeout_s=15.0) as client:
            qid = client.submit(CASCADE_SQL, method="pig")
        chaos.wait_for_journal_waves(
            journal_path, min_waves=2, timeout_s=60.0, restored=False
        )
    finally:
        chaos.kill_coordinator(proc)

    stored = wave_digests(journal_path, restored=False)
    assert len(stored) >= 2
    records, _torn = read_records(journal_path)
    assert not any(r.get("kind") == "terminal" for r in records), (
        "the kill was supposed to land mid-query"
    )

    env["REPRO_WAVE_DELAY_S"] = "0"
    proc2, addr2 = spawn_service(
        extra_args=("--journal", str(journal_path), "--recover"),
        env_extra=env,
    )
    try:
        with repro.connect(addr2, timeout_s=15.0) as client:
            payload = client.wait(qid, timeout_s=120.0)
        assert [tuple(row) for row in payload["rows"]] == (
            serial_reference_rows()
        )
        # Every wave the first coordinator persisted was replayed, not
        # re-executed: run 2 restored a superset of run 1's digests and
        # never stored one of them again.
        restored = wave_digests(journal_path, restored=True)
        assert stored <= restored
        assert payload["checkpoint_hits"] >= len(stored)
        later_stores = wave_digests(journal_path, restored=False) - stored
        assert not (later_stores & stored)
    finally:
        chaos.kill_coordinator(proc2)


def test_recover_banner_reports_the_resume(tmp_path):
    """The --recover banner is the operator's one-line audit trail."""
    import subprocess
    import sys

    journal_path = tmp_path / "serve.journal"
    env = {
        "REPRO_EXEC_BACKEND": "serial",
        "REPRO_CHECKPOINT": "1",
        "REPRO_CACHE_DIR": str(tmp_path / "cache"),
        "REPRO_WAVE_DELAY_S": "1.5",
    }
    proc, addr = spawn_service(
        extra_args=("--journal", str(journal_path)), env_extra=env
    )
    try:
        with repro.connect(addr, timeout_s=15.0) as client:
            client.submit(CASCADE_SQL, method="pig")
        chaos.wait_for_journal_waves(
            journal_path, min_waves=1, timeout_s=60.0, restored=False
        )
    finally:
        chaos.kill_coordinator(proc)

    env["REPRO_WAVE_DELAY_S"] = "0"
    proc2, addr2 = spawn_service(
        extra_args=("--journal", str(journal_path), "--recover"),
        env_extra=env,
    )
    try:
        banner = proc2.stdout.readline()  # line 2: the journal banner
        assert "repro-serve journal:" in banner
        assert "1 resumed" in banner
    finally:
        chaos.kill_coordinator(proc2)
