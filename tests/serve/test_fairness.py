"""Multi-tenant serving: fairness, quotas, pagination, oversize replies.

The PR 10 acceptance drill, in-process: a saturating low-priority flood
must not delay a high-priority tenant past its deadline, per-client
quotas shed with the structured ``quota-exceeded`` error, a result
larger than the page size streams bit-identically to the unpaginated
reference, and an oversized reply is a structured ``result-too-large``
error — never a dead connection.  The same guarantees across a
``--recover`` restart live in ``test_recovery.py`` and the subprocess
smoke drill.
"""

import threading
import time

import pytest

import repro
from repro.errors import (
    AdmissionRejected,
    QuotaExceeded,
    ResultTooLarge,
    ServiceError,
)
from repro.mapreduce import wire
from repro.serve.coordinator import QueryService
from repro.serve.session import ADMITTED, DONE, QUEUED

from tests.serve.test_service import MOBILE_SQL, expected_rows, wait_for


def admitted_at(service, qid):
    """Absolute (monotonic) time the session left the queue."""
    session = service._sessions[qid]
    return session.submitted_at + session.state_times[ADMITTED]


@pytest.fixture
def quota_service():
    """One slot per client, two queue seats per client, slots for two."""
    svc = QueryService(
        max_concurrent=2,
        max_queue=8,
        client_max_running=1,
        client_max_queued=2,
        aging_s=30.0,
    ).start()
    yield svc
    svc.stop()


class TestQuotas:
    def test_queue_quota_sheds_with_structured_error(self, quota_service):
        service = quota_service
        with repro.connect(service.address, client_id="hog") as cli:
            with service._planning_lock:
                running = cli.submit(MOBILE_SQL)
                assert wait_for(lambda: service._running == 1)
                q1 = cli.submit(MOBILE_SQL, seed=1)
                q2 = cli.submit(MOBILE_SQL, seed=2)
                with pytest.raises(QuotaExceeded) as excinfo:
                    cli.submit(MOBILE_SQL, seed=3)
                assert excinfo.value.code == "quota-exceeded"
                assert excinfo.value.details["client_id"] == "hog"
                assert excinfo.value.details["client_max_queued"] == 2
                # Quotas are per tenant: another client still has seats.
                other = cli.submit(MOBILE_SQL, seed=4, client_id="guest")
            for qid in (running, q1, q2, other):
                cli.wait(qid, timeout_s=60.0)

    def test_quota_exceeded_is_catchable_as_admission_rejected(self):
        # Pre-PR-10 clients catch the broad shed error; the new quota
        # error must land in that handler unmodified.
        assert issubclass(QuotaExceeded, AdmissionRejected)

    def test_running_quota_parks_client_while_others_pass(self, quota_service):
        service = quota_service
        with repro.connect(service.address) as cli:
            with service._planning_lock:
                hog1 = cli.submit(MOBILE_SQL, client_id="hog")
                assert wait_for(lambda: service._running == 1)
                hog2 = cli.submit(MOBILE_SQL, seed=1, client_id="hog")
                guest = cli.submit(MOBILE_SQL, seed=2, client_id="guest")
                # hog is at its 1-slot quota: guest takes the second
                # slot even though hog2 arrived first.
                assert wait_for(lambda: service._running == 2)
                assert service._sessions[guest].state != QUEUED
                assert service._sessions[hog2].state == QUEUED
            for qid in (hog1, hog2, guest):
                cli.wait(qid, timeout_s=60.0)

    def test_per_client_stats_in_serve_stats(self, quota_service):
        service = quota_service
        with repro.connect(service.address, client_id="alice") as cli:
            cli.run(MOBILE_SQL)
            stats = cli.stats()
        clients = stats["clients"]
        assert clients["alice"]["completed"] == 1
        assert clients["alice"]["queued"] == 0
        assert clients["alice"]["running"] == 0
        assert stats["scheduler"]["client_max_running"] == 1
        assert stats["scheduler"]["aging_s"] == 30.0


class TestAdmissionRace:
    def test_concurrent_submits_never_overshoot_the_queue(self):
        """Regression: shed check and queue append are one lock scope.

        One 'storm' query runs (parked at the planning lock) and the
        storm client is at its 1-slot running quota, so nothing else it
        submits can be dequeued — the queue level only moves under
        submit.  16 racing submits against 4 seats must admit exactly 4
        and shed exactly 12, with no overshoot at any interleaving.
        """
        service = QueryService(
            max_concurrent=8, max_queue=4, client_max_running=1
        ).start()
        try:
            with service._planning_lock:
                pilot = service.submit(
                    {"sql": MOBILE_SQL, "client_id": "storm"}
                )
                assert wait_for(lambda: service._running == 1)
                accepted, rejected = [], []
                barrier = threading.Barrier(16)

                def one_submit(seed):
                    barrier.wait()
                    try:
                        session = service.submit(
                            {
                                "sql": MOBILE_SQL,
                                "seed": seed,
                                "client_id": "storm",
                            }
                        )
                        accepted.append(session.query_id)
                    except AdmissionRejected:
                        rejected.append(seed)

                threads = [
                    threading.Thread(target=one_submit, args=(seed,))
                    for seed in range(16)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                assert len(accepted) == 4, (accepted, rejected)
                assert len(rejected) == 12
                assert service.stats["rejected"] == 12
            with repro.connect(service.address) as cli:
                cli.wait(pilot.query_id, timeout_s=60.0)
                for qid in accepted:
                    cli.wait(qid, timeout_s=60.0)
        finally:
            service.stop()


class TestFairnessDrill:
    def test_high_priority_overtakes_queued_flood(self):
        """The acceptance drill: a low-priority flood saturates the
        service; a high-priority query submitted *after* the whole flood
        is dequeued before any queued flood query and completes within
        its deadline."""
        service = QueryService(max_concurrent=1, max_queue=16).start()
        try:
            with repro.connect(service.address) as cli:
                with service._planning_lock:
                    pilot = cli.submit(MOBILE_SQL, client_id="bulk", priority=0)
                    assert wait_for(lambda: service._running == 1)
                    flood = [
                        cli.submit(
                            MOBILE_SQL, seed=seed, client_id="bulk", priority=0
                        )
                        for seed in range(1, 6)
                    ]
                    vip = cli.submit(
                        MOBILE_SQL,
                        seed=9,
                        client_id="vip",
                        priority=9,
                        deadline_s=60.0,
                    )
                # Within its deadline, despite 5 earlier waiters.
                assert cli.wait(vip, timeout_s=60.0)["rows"] == expected_rows(
                    MOBILE_SQL, seed=9
                )
                for qid in [pilot] + flood:
                    cli.wait(qid, timeout_s=120.0)
            vip_admitted = admitted_at(service, vip)
            for qid in flood:
                assert vip_admitted < admitted_at(service, qid), qid
        finally:
            service.stop()

    def test_aging_prevents_starvation_under_priority_flood(self):
        """Inverse drill: with aggressive aging, a lone low-priority
        query queued behind a continuous high-priority stream still gets
        admitted (bounded delay, not starvation)."""
        service = QueryService(max_concurrent=1, max_queue=32, aging_s=0.05).start()
        try:
            with repro.connect(service.address) as cli:
                with service._planning_lock:
                    pilot = cli.submit(MOBILE_SQL, client_id="vip", priority=9)
                    assert wait_for(lambda: service._running == 1)
                    low = cli.submit(
                        MOBILE_SQL, seed=1, client_id="humble", priority=0
                    )
                    time.sleep(0.6)  # low ages ~12 levels past the flood
                    flood = [
                        cli.submit(
                            MOBILE_SQL, seed=seed, client_id="vip", priority=9
                        )
                        for seed in range(2, 5)
                    ]
                assert cli.wait(low, timeout_s=60.0)["rows"] == expected_rows(
                    MOBILE_SQL, seed=1
                )
                for qid in [pilot] + flood:
                    cli.wait(qid, timeout_s=120.0)
            low_admitted = admitted_at(service, low)
            for qid in flood:
                assert low_admitted < admitted_at(service, qid), qid
        finally:
            service.stop()


class TestPagination:
    @pytest.fixture
    def done_query(self):
        service = QueryService(max_concurrent=2, max_queue=8).start()
        try:
            with repro.connect(service.address) as cli:
                qid = cli.submit(MOBILE_SQL, volume=20)
                full = cli.wait(qid, timeout_s=120.0)
                assert len(full["rows"]) > 7  # multi-page at limit=3
                yield service, cli, qid, full
        finally:
            service.stop()

    def test_pages_concatenate_bit_identically(self, done_query):
        service, cli, qid, full = done_query
        pages, offset = [], 0
        while True:
            page = cli.result(qid, timeout_s=5.0, offset=offset, limit=3)["result"]
            assert page["total_rows"] == len(full["rows"])
            assert page["offset"] == offset
            assert len(page["rows"]) <= 3
            pages.extend(page["rows"])
            if page["next_offset"] is None:
                break
            assert page["next_offset"] == offset + len(page["rows"])
            offset = page["next_offset"]
        assert pages == full["rows"]

    def test_iter_rows_streams_the_reference_rows(self, done_query):
        service, cli, qid, full = done_query
        assert list(cli.iter_rows(qid, page_size=3)) == full["rows"]

    def test_page_carries_result_metadata(self, done_query):
        service, cli, qid, full = done_query
        page = cli.result(qid, timeout_s=5.0, offset=0, limit=1)["result"]
        assert page["columns"] == full["columns"]
        assert page["output_records"] == full["output_records"]

    def test_offset_past_end_is_an_empty_last_page(self, done_query):
        service, cli, qid, full = done_query
        page = cli.result(
            qid, timeout_s=5.0, offset=len(full["rows"]) + 100, limit=5
        )["result"]
        assert page["rows"] == []
        assert page["next_offset"] is None

    def test_malformed_page_request_is_structured(self, done_query):
        service, cli, qid, full = done_query
        with pytest.raises(ServiceError):
            cli.result(qid, timeout_s=5.0, offset=-1, limit=5)
        with pytest.raises(ServiceError):
            cli.result(qid, timeout_s=5.0, offset=0, limit=0)
        # The connection survives the bad request.
        assert cli.status(qid)["state"] == DONE


class TestOversizedResult:
    def test_oversize_unpaginated_fetch_steers_to_pages(self, monkeypatch):
        """Satellite 1: a result bigger than the byte budget must come
        back as a structured ``result-too-large`` error (connection and
        DONE session both intact), and the same rows must then stream
        out page by page, bit-identical to the reference."""
        monkeypatch.setenv("REPRO_RESULT_MAX_BYTES", "512")
        service = QueryService(max_concurrent=2, max_queue=8).start()
        try:
            with repro.connect(service.address) as cli:
                qid = cli.submit(MOBILE_SQL, volume=20)
                with pytest.raises(ResultTooLarge) as excinfo:
                    cli.wait(qid, timeout_s=120.0)
                assert excinfo.value.code == "result-too-large"
                assert excinfo.value.details["max_bytes"] == 512
                assert excinfo.value.details["result_bytes"] > 512
                # Same connection, same session: the rows still stream.
                assert cli.status(qid)["state"] == DONE
                rows = list(cli.iter_rows(qid, page_size=2))
                assert rows == expected_rows(MOBILE_SQL, volume=20)
        finally:
            service.stop()

    def test_oversize_page_is_rejected_not_sent(self, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_MAX_BYTES", "512")
        service = QueryService(max_concurrent=2, max_queue=8).start()
        try:
            with repro.connect(service.address) as cli:
                qid = cli.submit(MOBILE_SQL, volume=20)
                assert wait_for(
                    lambda: cli.status(qid)["terminal"], timeout_s=120.0
                )
                total = cli.result(qid, timeout_s=5.0, offset=0, limit=1)[
                    "result"
                ]["total_rows"]
                with pytest.raises(ResultTooLarge):
                    cli.result(qid, timeout_s=5.0, offset=0, limit=total)
        finally:
            service.stop()

    def test_forced_small_frame_cap_send_guard(self, monkeypatch):
        """Defense in depth: even when an oversized reply slips past the
        endpoint's budget, the wire layer refuses it *before* any bytes
        leave and the connection answers with a structured error instead
        of dying mid-frame (the pre-PR-10 failure mode)."""
        service = QueryService(max_concurrent=1, max_queue=4).start()
        monkeypatch.setattr(wire, "MAX_FRAME_BYTES", 4096)
        monkeypatch.setattr(
            QueryService,
            "result",
            lambda self, qid, timeout_s=60.0, offset=None, limit=None: {
                "padding": "x" * 100_000
            },
        )
        try:
            with repro.connect(service.address) as cli:
                with pytest.raises(ResultTooLarge):
                    cli.result("q1", timeout_s=1.0)
                # The connection survived the refused frame.
                assert cli.stats()["max_queue"] == 4
        finally:
            service.stop()

    def test_send_frame_refuses_oversize_before_sending(self, monkeypatch):
        monkeypatch.setattr(wire, "MAX_FRAME_BYTES", 1024)
        with pytest.raises(wire.WireError, match="page the payload"):
            wire.send_frame(None, "y" * 10_000)  # refused before any I/O
