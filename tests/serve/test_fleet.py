"""Fleet health probes and live reconfiguration.

Covers the elastic-fleet half of the serve tentpole: ``probe_worker``
(the primitive behind ``repro worker list`` / ``repro worker status``),
:class:`FleetManager` re-pointing both the environment *and* any live
:class:`DistributedBackend` instance, and the CLI exit codes operators
script against.
"""

import socket

import pytest

from repro.cli import main
from repro.mapreduce.backend import close_backends, get_backend
from repro.mapreduce.config import WORKERS_ADDRS_ENV
from repro.mapreduce.worker import WorkerServer
from repro.serve.fleet import FleetManager, probe_worker


@pytest.fixture(autouse=True)
def _fresh_backends():
    close_backends()
    yield
    close_backends()


@pytest.fixture
def worker():
    server = WorkerServer().start()
    yield server
    server.stop()


def free_port_addr() -> str:
    """An address nothing listens on (bound once, then released)."""
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return f"127.0.0.1:{port}"


class TestProbeWorker:
    def test_live_worker(self, worker):
        report = probe_worker(worker.address)
        assert report["alive"] is True
        assert report["compatible"] is True
        assert report["error"] is None
        assert report["rtt_ms"] > 0
        assert report["info"]["repro"]

    def test_dead_address(self):
        report = probe_worker(free_port_addr(), timeout_s=0.5)
        assert report["alive"] is False
        assert report["rtt_ms"] is None
        assert "connect failed" in report["error"]

    def test_malformed_address_never_raises(self):
        report = probe_worker("not-an-addr", timeout_s=0.5)
        assert report["alive"] is False
        assert report["error"]


class TestFleetManager:
    def test_set_addrs_repoints_env(self, monkeypatch, worker):
        monkeypatch.delenv(WORKERS_ADDRS_ENV, raising=False)
        fleet = FleetManager()
        assert fleet.addrs == ()
        fleet.set_addrs(worker.address)
        assert fleet.addrs == (worker.address,)
        import os

        assert os.environ[WORKERS_ADDRS_ENV] == worker.address
        fleet.set_addrs("")
        assert fleet.addrs == ()
        assert WORKERS_ADDRS_ENV not in os.environ

    def test_set_addrs_reconfigures_live_backend(self, monkeypatch):
        first = WorkerServer().start()
        second = WorkerServer().start()
        try:
            monkeypatch.setenv("REPRO_EXEC_BACKEND", "distributed")
            monkeypatch.setenv(WORKERS_ADDRS_ENV, first.address)
            backend = get_backend()
            assert backend.addrs == (first.address,)
            fleet = FleetManager()
            delta = fleet.set_addrs(f"{first.address},{second.address}")
            assert delta["added"] == [second.address]
            assert backend.addrs == (first.address, second.address)
            # Drain the first worker out again: the same live instance
            # keeps serving from the survivor.
            delta = fleet.set_addrs(second.address)
            assert delta["removed"] == [first.address]
            assert backend.addrs == (second.address,)
            assert backend.run_tasks(lambda i: i + 1, 5) == [1, 2, 3, 4, 5]
        finally:
            first.stop()
            second.stop()

    def test_probe_all_reports_every_member(self, monkeypatch, worker):
        dead = free_port_addr()
        monkeypatch.setenv(WORKERS_ADDRS_ENV, f"{worker.address},{dead}")
        reports = FleetManager().probe_all(timeout_s=0.5)
        assert [r["addr"] for r in reports] == [worker.address, dead]
        assert [r["alive"] for r in reports] == [True, False]


class TestWorkerCli:
    def test_worker_list_all_alive_exits_zero(self, monkeypatch, worker, capsys):
        monkeypatch.setenv(WORKERS_ADDRS_ENV, worker.address)
        assert main(["worker", "list"]) == 0
        out = capsys.readouterr().out
        assert worker.address in out
        assert "alive" in out

    def test_worker_list_flags_a_corpse(self, monkeypatch, worker, capsys):
        monkeypatch.setenv(
            WORKERS_ADDRS_ENV, f"{worker.address},{free_port_addr()}"
        )
        assert main(["worker", "list", "--timeout", "0.5"]) == 1
        out = capsys.readouterr().out
        assert "DOWN" in out and "alive" in out

    def test_worker_list_without_fleet_exits_one(self, monkeypatch, capsys):
        monkeypatch.delenv(WORKERS_ADDRS_ENV, raising=False)
        assert main(["worker", "list"]) == 1
        assert "no worker addresses configured" in capsys.readouterr().err

    def test_worker_status_live(self, worker, capsys):
        assert main(["worker", "status", worker.address]) == 0
        assert worker.address in capsys.readouterr().out

    def test_worker_status_dead(self, capsys):
        assert main(
            ["worker", "status", free_port_addr(), "--timeout", "0.5"]
        ) == 1
        assert "DOWN" in capsys.readouterr().out
