"""The deprecated ``ServiceClient`` alias: warns once, still works."""

import warnings

import pytest

from repro.serve import ServiceClient
from repro.serve.coordinator import QueryService

MOBILE_SQL = (
    "SELECT t2.id FROM table t1, table t2 "
    "WHERE t1.d = t2.d AND t1.bt <= t2.bt"
)


@pytest.fixture
def service():
    svc = QueryService(max_concurrent=2, max_queue=8).start()
    yield svc
    svc.stop()


def test_emits_deprecation_warning_exactly_once(service):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        with ServiceClient(service.address, timeout_s=15.0) as client:
            client.stats()
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1
    assert "repro.connect" in str(deprecations[0].message)
    # The warning points at the caller, not at client.py internals.
    assert deprecations[0].filename == __file__


def test_alias_still_round_trips_a_query(service):
    with pytest.deprecated_call():
        client = ServiceClient(service.address, timeout_s=15.0)
    with client:
        payload = client.run(MOBILE_SQL, timeout_s=60.0)
    assert payload["rows"]
    import repro

    with repro.connect(service.address, timeout_s=15.0) as modern:
        assert modern.run(MOBILE_SQL, timeout_s=60.0)["rows"] == (
            payload["rows"]
        )
