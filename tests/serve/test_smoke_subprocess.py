"""Serve-mode CI smoke: real daemons end to end.

Boots one ``repro serve`` coordinator *subprocess* plus two real worker
daemons, then drives the ISSUE-7 smoke scenario over the wire from this
process: three concurrent queries — one completing (rows checked
against a local serial reference), one cancelled, one dying on its
deadline — all against the distributed backend.

This is the ``make serve-smoke`` leg of ``make ci``: everything the
in-process tests cover, but across real process boundaries (banner
port discovery, environment plumbing into the daemon, subprocess
teardown).
"""

import sys
import time
from pathlib import Path

import pytest

from repro.cli import PLANNERS
from repro.core.executor import PlanExecutor
from repro.errors import DeadlineExceeded, QueryCancelled
from repro.mapreduce.config import ClusterConfig
from repro.mapreduce.runtime import SimulatedCluster
from repro.mapreduce.wire import closure_transport_available
from repro.relational.sql import parse_join_query
import repro
from repro.serve.coordinator import spawn_service
from repro.workloads import workload_relations

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "mapreduce"))
from conformance import worker_pool  # noqa: E402

pytestmark = pytest.mark.skipif(
    not closure_transport_available(),
    reason="cloudpickle unavailable: closures cannot ship over TCP",
)

SQL = (
    "SELECT t2.id FROM table t1, table t2 "
    "WHERE t1.d = t2.d AND t1.bt <= t2.bt"
)


def serial_reference_rows(sql=SQL, volume=0, seed=0):
    relations = workload_relations("mobile", volume, seed)
    query = parse_join_query(sql, relations, name="reference")
    config = ClusterConfig()
    plan = PLANNERS["ours"](config).plan(query)
    outcome = PlanExecutor(SimulatedCluster(config)).execute(plan, query)
    return [tuple(row) for row in outcome.result.rows]


def test_serve_smoke_over_subprocess_daemons():
    with worker_pool(2) as addrs:
        proc, service_addr = spawn_service(
            env_extra={
                "REPRO_EXEC_BACKEND": "distributed",
                "REPRO_WORKERS_ADDRS": ",".join(addrs),
            }
        )
        try:
            with repro.connect(service_addr, timeout_s=30.0) as client:
                # Three concurrent submissions; in a fresh daemon every
                # cache is cold, so planning dominates — the cancel and
                # the 1 ms deadline both land long before any rows exist.
                ok_id = client.submit(SQL, seed=0)
                doomed_id = client.submit(SQL, seed=1, deadline_s=0.001)
                cancelled_id = client.submit(SQL, seed=2)
                client.cancel(cancelled_id, "smoke cancel")

                rows = client.wait(ok_id, timeout_s=120.0)["rows"]
                assert rows == serial_reference_rows(seed=0)

                with pytest.raises(DeadlineExceeded):
                    client.wait(doomed_id, timeout_s=30.0)
                assert client.status(doomed_id)["error"]["code"] == (
                    "deadline-exceeded"
                )

                with pytest.raises(QueryCancelled):
                    client.wait(cancelled_id, timeout_s=30.0)
                assert client.status(cancelled_id)["error"]["code"] == "cancelled"

                stats = client.stats()
                assert stats["done"] == 1
                assert stats["timed_out"] == 1
                assert stats["cancelled"] == 1
                assert stats["tasks_in_flight"] == 0
                assert stats["fleet"] == list(addrs)

                client.shutdown()
            for _ in range(100):
                if proc.poll() is not None:
                    break
                time.sleep(0.1)
            assert proc.poll() is not None, "daemon ignored shutdown"
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.wait()


def test_serve_fairness_and_pagination_over_subprocess_daemon():
    """PR 10 CI leg: two-client fairness drill + paginated large result
    against a real daemon.

    A low-priority flood from one tenant saturates the single slot; the
    high-priority tenant's query, submitted last with a deadline, must
    still complete inside it (priority dequeue + quota isolation).  Then
    a result bigger than the page size streams out page by page,
    bit-identical to the unpaginated reference.
    """
    proc, service_addr = spawn_service(
        extra_args=(
            "--max-concurrent",
            "1",
            "--max-queue",
            "16",
            "--client-max-queued",
            "8",
        ),
    )
    try:
        with repro.connect(service_addr, timeout_s=30.0) as client:
            # Saturate: one running + 5 queued low-priority queries.
            flood = [
                client.submit(
                    SQL, seed=seed, client_id="bulk", priority=0
                )
                for seed in range(6)
            ]
            vip = client.submit(
                SQL,
                seed=9,
                client_id="vip",
                priority=9,
                deadline_s=90.0,
            )
            rows = client.wait(vip, timeout_s=90.0)["rows"]
            assert rows == serial_reference_rows(seed=9)

            # Per-client quota: seat 9 for 'bulk' sheds structurally.
            from repro.errors import QuotaExceeded

            with repro.connect(
                service_addr, timeout_s=30.0, client_id="bulk"
            ) as bulk:
                try:
                    for seed in range(20, 40):
                        bulk.submit(SQL, seed=seed)
                except QuotaExceeded as exc:
                    assert exc.code == "quota-exceeded"
                    assert exc.details["client_id"] == "bulk"
                else:  # pragma: no cover - quota must bite
                    raise AssertionError("bulk flood never hit its quota")

            for qid in flood:
                client.wait(qid, timeout_s=180.0)

            # Paginated large-result query: pages concatenate to the
            # reference bit-identically.
            big = client.submit(SQL, volume=20, seed=0)
            reference = client.wait(big, timeout_s=120.0)["rows"]
            assert reference == serial_reference_rows(volume=20, seed=0)
            paged = list(client.iter_rows(big, page_size=7))
            assert paged == reference

            stats = client.stats()
            assert stats["clients"]["vip"]["completed"] == 1
            assert stats["clients"]["bulk"]["completed"] >= 6
            assert stats["clients"]["bulk"]["quota_rejected"] >= 1
            client.shutdown()
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.wait()
