"""In-process tests of the ``repro serve`` coordinator + client.

Each test boots a real :class:`QueryService` on a loopback port and
talks to it over the wire through :func:`repro.connect`, so the frame
protocol, the error-taxonomy round-trip, and the admission machinery
are all exercised — only the worker fleet is absent (queries run on the
default in-process backend).

Determinism trick used throughout: holding ``service._planning_lock``
from the test thread parks any admitted session at a known point
(before its plan is built), which turns "cancel a running query",
"expire a deadline", and "fill every slot" into race-free scenarios.
"""

import os
import threading
import time

import pytest

from repro.cli import PLANNERS
from repro.core.executor import PlanExecutor
from repro.errors import (
    AdmissionRejected,
    DeadlineExceeded,
    PlanningFailed,
    QueryCancelled,
    ServiceError,
)
from repro.mapreduce.config import ClusterConfig
from repro.mapreduce.runtime import SimulatedCluster
from repro.relational.sql import parse_join_query
import repro
from repro.serve.coordinator import QueryService
from repro.serve.session import CANCELLED, DONE, QUEUED, TIMED_OUT
from repro.workloads import workload_relations

MOBILE_SQL = (
    "SELECT t2.id FROM table t1, table t2 "
    "WHERE t1.d = t2.d AND t1.bt <= t2.bt"
)


def expected_rows(sql: str, workload="mobile", volume=0, seed=0, method="ours"):
    """The serial reference answer the service must reproduce."""
    relations = workload_relations(workload, volume, seed)
    query = parse_join_query(sql, relations, name="reference")
    config = ClusterConfig()
    plan = PLANNERS[method](config).plan(query)
    outcome = PlanExecutor(SimulatedCluster(config)).execute(plan, query)
    return [tuple(row) for row in outcome.result.rows]


@pytest.fixture
def service():
    svc = QueryService(max_concurrent=2, max_queue=8).start()
    yield svc
    svc.stop()


@pytest.fixture
def client(service):
    with repro.connect(service.address, timeout_s=15.0) as cli:
        yield cli


@pytest.fixture
def tight_service():
    """One slot, one queue seat: the shedding/queueing drills."""
    svc = QueryService(max_concurrent=1, max_queue=1).start()
    yield svc
    svc.stop()


def wait_for(predicate, timeout_s=5.0, interval_s=0.01):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return False


class TestRoundTrip:
    def test_query_matches_direct_execution(self, client):
        result = client.run(MOBILE_SQL, workload="mobile", volume=20, seed=0)
        assert result["columns"] == ["t2_id"]
        assert result["rows"] == expected_rows(MOBILE_SQL, volume=20)
        assert result["output_records"] == len(result["rows"])
        assert result["makespan_s"] > 0
        assert result["num_jobs"] >= 1

    def test_knob_overrides_are_scoped_to_the_session(self, client):
        before = dict(os.environ)
        thread_rows = client.run(
            MOBILE_SQL,
            knobs={"REPRO_EXEC_BACKEND": "thread", "REPRO_EXEC_WORKERS": "2"},
        )["rows"]
        # The fork-pool backend is pinned to threads under serve; either
        # way the answer is bit-identical and the environment untouched.
        process_rows = client.run(
            MOBILE_SQL, knobs={"REPRO_EXEC_BACKEND": "process"}
        )["rows"]
        assert thread_rows == expected_rows(MOBILE_SQL)
        assert process_rows == thread_rows
        assert {
            k: v for k, v in os.environ.items() if k.startswith("REPRO_")
        } == {k: v for k, v in before.items() if k.startswith("REPRO_")}

    def test_concurrent_clients_get_isolated_answers(self, service):
        specs = [(seed, expected_rows(MOBILE_SQL, seed=seed)) for seed in (0, 1, 2)]
        results = {}
        errors = []

        def one_client(seed):
            try:
                with repro.connect(service.address, timeout_s=30.0) as cli:
                    results[seed] = cli.run(MOBILE_SQL, seed=seed)["rows"]
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append((seed, exc))

        threads = [
            threading.Thread(target=one_client, args=(seed,))
            for seed, _ in specs
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        for seed, expected in specs:
            assert results[seed] == expected, f"seed {seed} diverged"

    def test_stats_counters(self, service, client):
        client.run(MOBILE_SQL)
        stats = client.stats()
        assert stats["submitted"] >= 1
        assert stats["done"] >= 1
        assert stats["tasks_in_flight"] == 0
        assert stats["max_concurrent"] == service.max_concurrent
        assert isinstance(stats["fleet"], list)


class TestAdmission:
    def test_unknown_workload_rejected(self, client):
        with pytest.raises(AdmissionRejected) as excinfo:
            client.submit(MOBILE_SQL, workload="spark")
        assert excinfo.value.code == "admission-rejected"
        assert "mobile" in excinfo.value.details["allowed"]

    def test_unknown_method_rejected(self, client):
        with pytest.raises(AdmissionRejected):
            client.submit(MOBILE_SQL, method="presto")

    def test_empty_sql_rejected(self, client):
        with pytest.raises(AdmissionRejected):
            client.submit("   ")

    def test_non_overridable_knob_rejected(self, client):
        # The fleet is service-owned: a per-query private fleet must shed.
        with pytest.raises(AdmissionRejected) as excinfo:
            client.submit(
                MOBILE_SQL, knobs={"REPRO_WORKERS_ADDRS": "127.0.0.1:9"}
            )
        assert excinfo.value.details["rejected"] == ["REPRO_WORKERS_ADDRS"]

    def test_bad_deadline_rejected(self, client):
        with pytest.raises(AdmissionRejected):
            client.submit(MOBILE_SQL, deadline_s=-1)

    def test_queue_full_sheds_with_structured_details(self, tight_service):
        service = tight_service
        with repro.connect(service.address, timeout_s=15.0) as cli:
            with service._planning_lock:  # park the running query
                running = cli.submit(MOBILE_SQL)
                assert wait_for(lambda: service._running == 1)
                queued = cli.submit(MOBILE_SQL, seed=1)
                with pytest.raises(AdmissionRejected) as excinfo:
                    cli.submit(MOBILE_SQL, seed=2)
                assert excinfo.value.code == "admission-rejected"
                assert excinfo.value.details["max_queue"] == 1
                assert excinfo.value.details["queued"] == 1
                # Shedding is cheap and structural, not a hung socket:
                # the same connection still answers immediately.
                assert cli.status(running)["state"] is not None
            # Lock released: both admitted queries drain to DONE.
            assert cli.wait(running)["rows"] == expected_rows(MOBILE_SQL)
            assert cli.wait(queued)["rows"] == expected_rows(MOBILE_SQL, seed=1)
            assert cli.stats()["rejected"] == 1

    def test_unknown_query_id_is_a_service_error(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.status("q999")
        assert "unknown query id" in str(excinfo.value)


class TestFailurePaths:
    def test_bad_sql_fails_with_planning_taxonomy(self, client):
        query_id = client.submit("DELETE FROM table")
        with pytest.raises(PlanningFailed):
            client.wait(query_id)
        snap = client.status(query_id)
        assert snap["state"] == "FAILED"
        assert snap["error"]["code"] == "planning-failed"

    def test_deadline_expiry_times_out_with_taxonomy(self, service, client):
        with service._planning_lock:
            query_id = client.submit(MOBILE_SQL, deadline_s=0.2)
            time.sleep(0.35)  # token fires while parked at the lock
        with pytest.raises(DeadlineExceeded):
            client.wait(query_id)
        snap = client.status(query_id)
        assert snap["state"] == TIMED_OUT
        assert snap["error"]["code"] == "deadline-exceeded"
        assert client.stats()["timed_out"] == 1

    def test_cancel_running_session(self, service, client):
        with service._planning_lock:
            query_id = client.submit(MOBILE_SQL)
            assert wait_for(lambda: service._running == 1)
            snap = client.cancel(query_id, "operator said stop")
            # Cooperative: the session thread terminalizes it once it
            # reaches its next checkpoint, not necessarily instantly.
        with pytest.raises(QueryCancelled, match="operator said stop"):
            client.wait(query_id)
        snap = client.status(query_id)
        assert snap["state"] == CANCELLED
        assert snap["error"]["code"] == "cancelled"

    def test_cancel_queued_session_is_immediate(self, tight_service):
        service = tight_service
        with repro.connect(service.address, timeout_s=15.0) as cli:
            with service._planning_lock:
                running = cli.submit(MOBILE_SQL)
                assert wait_for(lambda: service._running == 1)
                queued = cli.submit(MOBILE_SQL, seed=1)
                assert cli.status(queued)["state"] == QUEUED
                snap = cli.cancel(queued, "queue jump denied")
                # A queued victim never waits for a slot to die.
                assert snap["state"] == CANCELLED
                assert snap["terminal"] is True
            assert cli.wait(running)["rows"] == expected_rows(MOBILE_SQL)
            stats = cli.stats()
            assert stats["cancelled"] == 1 and stats["done"] == 1

    def test_expired_queued_session_is_reaped(self, tight_service):
        """A deadline that fires while the query is still queued must
        terminalize it from the admission loop's reaper — it never gets
        a slot, never plans, and still reports the right taxonomy."""
        service = tight_service
        with repro.connect(service.address, timeout_s=15.0) as cli:
            with service._planning_lock:
                running = cli.submit(MOBILE_SQL)
                assert wait_for(lambda: service._running == 1)
                doomed = cli.submit(MOBILE_SQL, seed=1, deadline_s=0.1)
                assert wait_for(
                    lambda: cli.status(doomed)["terminal"], timeout_s=3.0
                )
                assert cli.status(doomed)["state"] == TIMED_OUT
            assert cli.wait(running)["rows"] == expected_rows(MOBILE_SQL)

    def test_result_poll_timeout_is_not_an_error(self, service, client):
        with service._planning_lock:
            query_id = client.submit(MOBILE_SQL)
            payload = client.result(query_id, timeout_s=0.05)
            assert payload["terminal"] is False
            assert "result" not in payload
        assert client.wait(query_id)["rows"] == expected_rows(MOBILE_SQL)


class TestServiceLifecycle:
    def test_stop_terminalizes_queued_sessions(self):
        service = QueryService(max_concurrent=1, max_queue=4).start()
        try:
            with repro.connect(service.address, timeout_s=15.0) as cli:
                with service._planning_lock:
                    running = cli.submit(MOBILE_SQL)
                    assert wait_for(lambda: service._running == 1)
                    queued = cli.submit(MOBILE_SQL, seed=1)
        finally:
            service.stop()
        queued_session = service._sessions[queued]
        assert wait_for(lambda: queued_session.done.is_set(), timeout_s=5.0)
        assert queued_session.state == CANCELLED
        running_session = service._sessions[running]
        assert wait_for(lambda: running_session.done.is_set(), timeout_s=10.0)

    def test_submit_after_stop_is_rejected(self):
        service = QueryService(max_concurrent=1, max_queue=4).start()
        service.stop()
        with pytest.raises(AdmissionRejected):
            service.submit({"sql": MOBILE_SQL})

    def test_done_session_survives_queue_pressure(self, client):
        query_id = client.submit(MOBILE_SQL)
        rows = client.wait(query_id)
        assert client.status(query_id)["state"] == DONE
        # Re-fetching a terminal result is idempotent.
        assert client.result(query_id, timeout_s=1.0)["result"]["rows"] == rows["rows"]
