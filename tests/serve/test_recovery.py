"""Coordinator crash recovery from the session journal (in-process).

A ``QueryService`` built with ``recover=True`` replays its journal
before the admitter thread starts: terminal sessions come back whole
(DONE results served from the journal, never re-executed), sessions
that were in flight re-queue under their original ids with fresh
deadline budgets, and a torn tail costs at most the record that was
mid-append.  The subprocess SIGKILL drill lives in
``test_recovery_subprocess.py``; here every crash is simulated by
stopping one service and recovering a second from the same journal.
"""

import pytest

import repro
from repro.cli import PLANNERS
from repro.core.executor import PlanExecutor
from repro.mapreduce.config import ClusterConfig
from repro.mapreduce.runtime import SimulatedCluster
from repro.relational.sql import parse_join_query
from repro.serve.coordinator import QueryService
from repro.serve.session import DONE, QUEUED, RUNNING, QuerySession
from repro.storage import SessionJournal, read_records
from repro.workloads import workload_relations

MOBILE_SQL = (
    "SELECT t2.id FROM table t1, table t2 "
    "WHERE t1.d = t2.d AND t1.bt <= t2.bt"
)


def expected_rows(sql=MOBILE_SQL, seed=0, method="ours"):
    relations = workload_relations("mobile", 0, seed)
    query = parse_join_query(sql, relations, name="reference")
    config = ClusterConfig()
    plan = PLANNERS[method](config).plan(query)
    outcome = PlanExecutor(SimulatedCluster(config)).execute(plan, query)
    return [tuple(row) for row in outcome.result.rows]


def submit_record(qid, sql=MOBILE_SQL, seed=0):
    return {
        "kind": "submit",
        "id": qid,
        "spec": {
            "sql": sql,
            "workload": "mobile",
            "volume": 0,
            "seed": seed,
            "method": "ours",
            "deadline_s": None,
            "knobs": {},
        },
    }


def wait_rows(service, qid, timeout_s=60.0):
    with repro.connect(service.address, timeout_s=15.0) as client:
        return [tuple(row) for row in client.wait(qid, timeout_s=timeout_s)["rows"]]


def wait_for_terminal_record(journal_path, timeout_s=5.0):
    """``client.wait`` returns on ``done``; the terminal record lands a
    beat later from the session thread — poll the journal for it."""
    import time

    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if any(
            r.get("kind") == "terminal"
            for r in read_records(journal_path)[0]
            if isinstance(r, dict)
        ):
            return
        time.sleep(0.02)


class TestDoneRecovery:
    def test_done_session_served_from_journal_not_reexecuted(self, tmp_path):
        journal_path = str(tmp_path / "serve.journal")
        first = QueryService(journal_path=journal_path).start()
        try:
            with repro.connect(first.address, timeout_s=15.0) as client:
                qid = client.submit(MOBILE_SQL, seed=0)
                rows = [tuple(r) for r in client.wait(qid, timeout_s=60.0)["rows"]]
        finally:
            first.stop()
        assert rows == expected_rows(seed=0)

        second = QueryService(journal_path=journal_path, recover=True).start()
        try:
            assert second.recovered["done"] == 1
            assert second.recovered["resumed"] == 0
            # Served straight from the restored terminal record: the
            # submitted counter never moves, nothing re-runs.
            assert second.stats["submitted"] == 0
            assert wait_rows(second, qid, timeout_s=15.0) == rows
            stats = second.service_stats()
            assert stats["recovered"]["done"] == 1
            assert stats["journal"]["bytes"] > 0
        finally:
            second.stop()

    def test_recovered_ids_never_collide(self, tmp_path):
        journal_path = str(tmp_path / "serve.journal")
        first = QueryService(journal_path=journal_path).start()
        try:
            with repro.connect(first.address, timeout_s=15.0) as client:
                qid = client.submit(MOBILE_SQL, seed=0)
                client.wait(qid, timeout_s=60.0)
        finally:
            first.stop()
        second = QueryService(journal_path=journal_path, recover=True).start()
        try:
            with repro.connect(second.address, timeout_s=15.0) as client:
                fresh = client.submit(MOBILE_SQL, seed=1)
            assert fresh != qid
            assert int(fresh.lstrip("q")) > int(qid.lstrip("q"))
        finally:
            second.stop()


class TestCrashMidFlight:
    def test_running_session_resumes_and_completes(self, tmp_path, monkeypatch):
        """A journal whose last word on q1 is RUNNING (no terminal):
        recovery re-queues it under its original id and it runs to DONE
        with the reference rows."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_CHECKPOINT", "1")
        journal_path = tmp_path / "serve.journal"
        journal = SessionJournal(journal_path, fsync=False)
        journal.append(submit_record("q1"))
        journal.append({"kind": "state", "id": "q1", "state": RUNNING})
        journal.close()

        service = QueryService(
            journal_path=str(journal_path), recover=True
        ).start()
        try:
            assert service.recovered["resumed"] == 1
            assert wait_rows(service, "q1") == expected_rows(seed=0)
            assert service._sessions["q1"].state == DONE
        finally:
            service.stop()
        # The rerun journaled its own lifecycle into the same file.
        records, torn = read_records(journal_path)
        assert not torn
        kinds = [r["kind"] for r in records if r.get("id") == "q1"]
        assert kinds.count("terminal") == 1

    def test_resumed_session_restores_checkpointed_waves(
        self, tmp_path, monkeypatch
    ):
        """With a warm checkpoint tier, the resumed run replays every
        wave from storage instead of recomputing it."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_CHECKPOINT", "1")
        journal_path = str(tmp_path / "serve.journal")

        first = QueryService(journal_path=journal_path).start()
        try:
            with repro.connect(first.address, timeout_s=15.0) as client:
                qid = client.submit(MOBILE_SQL, seed=0)
                payload = client.wait(qid, timeout_s=60.0)
                rows = [tuple(r) for r in payload["rows"]]
                assert payload["checkpoint_stores"] > 0
        finally:
            first.stop()

        # Forge the crash: strip q1's terminal record so recovery sees a
        # query that died mid-flight, with its waves already persisted.
        records, torn = read_records(journal_path)
        assert not torn
        survivors = [r for r in records if r.get("kind") != "terminal"]
        rewritten = SessionJournal(tmp_path / "rewritten.journal", fsync=False)
        for record in survivors:
            rewritten.append(record)
        rewritten.close()

        second = QueryService(
            journal_path=str(tmp_path / "rewritten.journal"), recover=True
        ).start()
        try:
            assert second.recovered["resumed"] == 1
            with repro.connect(second.address, timeout_s=15.0) as client:
                payload = client.wait(qid, timeout_s=60.0)
            assert [tuple(r) for r in payload["rows"]] == rows
            # Zero re-executed waves: the resume was all restores.
            assert payload["checkpoint_hits"] > 0
            assert payload["checkpoint_stores"] == 0
        finally:
            second.stop()

    def test_queued_session_is_readmitted(self, tmp_path):
        journal_path = tmp_path / "serve.journal"
        journal = SessionJournal(journal_path, fsync=False)
        journal.append(submit_record("q7", seed=3))
        journal.close()
        service = QueryService(
            journal_path=str(journal_path), recover=True
        ).start()
        try:
            assert service.recovered["requeued"] == 1
            assert wait_rows(service, "q7") == expected_rows(seed=3)
        finally:
            service.stop()

    def test_torn_tail_is_tolerated(self, tmp_path):
        journal_path = tmp_path / "serve.journal"
        journal = SessionJournal(journal_path, fsync=False)
        journal.append(submit_record("q1"))
        journal.close()
        with open(journal_path, "ab") as handle:
            handle.write(b"\x07\x00\x00")  # crash mid-header
        service = QueryService(
            journal_path=str(journal_path), recover=True
        ).start()
        try:
            assert service.recovered["torn"] is True
            assert service.recovered["requeued"] == 1
            assert wait_rows(service, "q1") == expected_rows(seed=0)
        finally:
            service.stop()


class TestSchedulingMetadataRecovery:
    def test_client_and_priority_survive_recovery(self, tmp_path):
        """Submits are journaled with their scheduling metadata, so a
        recovered coordinator re-admits sessions under their original
        tenant and priority — the fairness drill holds across restart."""
        journal_path = str(tmp_path / "serve.journal")
        first = QueryService(
            journal_path=journal_path, max_concurrent=1, max_queue=16
        ).start()
        try:
            with repro.connect(first.address) as client:
                with first._planning_lock:
                    client.submit(MOBILE_SQL, client_id="bulk", priority=0)
                    flood = [
                        client.submit(
                            MOBILE_SQL, seed=s, client_id="bulk", priority=0
                        )
                        for s in range(1, 4)
                    ]
                    vip = client.submit(
                        MOBILE_SQL, seed=9, client_id="vip", priority=9
                    )
                    # "Crash" with everything still queued/running.
        finally:
            first.stop()

        second = QueryService(
            journal_path=journal_path,
            recover=True,
            max_concurrent=1,
            max_queue=16,
        ).start()
        try:
            session = second._sessions[vip]
            assert session.client_id == "vip"
            assert session.priority == 9
            for qid in flood:
                assert second._sessions[qid].client_id == "bulk"
                assert second._sessions[qid].priority == 0
            # Priority survives: vip completes before the flood drains.
            assert wait_rows(second, vip) == expected_rows(seed=9)
            for qid in flood:
                wait_rows(second, qid, timeout_s=120.0)
            vip_s = second._sessions[vip]
            vip_admitted = vip_s.submitted_at + vip_s.state_times["ADMITTED"]
            for qid in flood:
                s = second._sessions[qid]
                assert vip_admitted < s.submitted_at + s.state_times["ADMITTED"]
        finally:
            second.stop()

    def test_legacy_submit_records_default_scheduling_fields(self, tmp_path):
        """Pre-PR-10 journals carry no client_id/priority; recovery must
        default them, not crash."""
        journal_path = tmp_path / "serve.journal"
        journal = SessionJournal(journal_path, fsync=False)
        journal.append(submit_record("q3", seed=1))
        journal.close()
        service = QueryService(
            journal_path=str(journal_path), recover=True
        ).start()
        try:
            session = service._sessions["q3"]
            assert session.client_id == "default"
            assert session.priority == 1
            assert wait_rows(service, "q3") == expected_rows(seed=1)
        finally:
            service.stop()


class TestJournalResultSpill:
    def test_large_result_spills_and_recovers(self, tmp_path, monkeypatch):
        """Satellite 4: DONE rows above the inline cap go to the blob
        tier by digest; the journal stays event-sized and recovery reads
        the spilled result back bit-identically."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_JOURNAL_RESULT_MAX_BYTES", "256")
        journal_path = str(tmp_path / "serve.journal")
        first = QueryService(journal_path=journal_path).start()
        try:
            with repro.connect(first.address) as client:
                qid = client.submit(MOBILE_SQL, volume=20)
                rows = [
                    tuple(r)
                    for r in client.wait(qid, timeout_s=120.0)["rows"]
                ]
            wait_for_terminal_record(journal_path)
        finally:
            first.stop()
        # The journal holds a digest reference, not the rows.
        from repro.storage import BLOB_REF_KEY

        records, torn = read_records(journal_path)
        assert not torn
        terminal = [r for r in records if r.get("kind") == "terminal"][0]
        assert BLOB_REF_KEY in terminal["result"]
        assert terminal["result"]["bytes"] > 256

        second = QueryService(journal_path=journal_path, recover=True).start()
        try:
            assert second.recovered["done"] == 1
            assert second.recovered["spill_lost"] == 0
            assert second.stats["submitted"] == 0  # served, not re-run
            assert wait_rows(second, qid, timeout_s=15.0) == rows
        finally:
            second.stop()

    def test_lost_spill_falls_back_to_reexecution(self, tmp_path, monkeypatch):
        """A missing/corrupt spilled blob is not a lost query: recovery
        re-admits the session and deterministic re-execution rebuilds
        the identical rows."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_JOURNAL_RESULT_MAX_BYTES", "256")
        journal_path = str(tmp_path / "serve.journal")
        first = QueryService(journal_path=journal_path).start()
        try:
            with repro.connect(first.address) as client:
                qid = client.submit(MOBILE_SQL, volume=20)
                rows = [
                    tuple(r)
                    for r in client.wait(qid, timeout_s=120.0)["rows"]
                ]
            wait_for_terminal_record(journal_path)
        finally:
            first.stop()
        import shutil

        shutil.rmtree(tmp_path / "cache" / "blobs")

        second = QueryService(journal_path=journal_path, recover=True).start()
        try:
            assert second.recovered["spill_lost"] == 1
            assert second.recovered["done"] == 0
            # Its last journaled state was RUNNING, so it re-admits on
            # the resumed path (checkpointed waves restore from disk).
            assert second.recovered["resumed"] == 1
            assert wait_rows(second, qid, timeout_s=120.0) == rows
        finally:
            second.stop()

    def test_small_result_stays_inline(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        journal_path = str(tmp_path / "serve.journal")
        first = QueryService(journal_path=journal_path).start()
        try:
            with repro.connect(first.address) as client:
                qid = client.submit(MOBILE_SQL)
                client.wait(qid, timeout_s=60.0)
            wait_for_terminal_record(journal_path)
        finally:
            first.stop()
        from repro.storage import BLOB_REF_KEY

        records, _torn = read_records(journal_path)
        terminal = [r for r in records if r.get("kind") == "terminal"][0]
        assert isinstance(terminal["result"], dict)
        assert BLOB_REF_KEY not in terminal["result"]


class TestGuards:
    def test_recover_requires_a_journal(self):
        with pytest.raises(ValueError, match="journal"):
            QueryService(recover=True)

    def test_restore_terminal_rejects_non_terminal_states(self):
        session = QuerySession(query_id="q1", sql=MOBILE_SQL)
        with pytest.raises(ValueError):
            session.restore_terminal(QUEUED)
        session.restore_terminal(DONE, result={"rows": []})
        assert session.state == DONE
        assert session.done.is_set()
