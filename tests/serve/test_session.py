"""Unit tests for the query-session lifecycle state machine.

The coordinator's concurrency story leans entirely on these properties:
transitions are validated, terminal states are absorbing (first writer
wins), ``done`` fires exactly once, and late results of a cancelled
query are discarded rather than surfaced.
"""

import threading
import time

import pytest

from repro.errors import DeadlineExceeded, QueryCancelled
from repro.serve.session import (
    ADMITTED,
    CANCELLED,
    DONE,
    FAILED,
    PLANNING,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    TIMED_OUT,
    TRANSITIONS,
    QuerySession,
)


def make_session(**kwargs) -> QuerySession:
    return QuerySession("q-test", "SELECT t1.id FROM table t1", **kwargs)


class TestTransitionTable:
    def test_every_state_has_a_row(self):
        states = {QUEUED, ADMITTED, PLANNING, RUNNING} | TERMINAL_STATES
        assert set(TRANSITIONS) == states

    def test_terminal_states_are_absorbing(self):
        for state in TERMINAL_STATES:
            assert TRANSITIONS[state] == frozenset()

    def test_happy_path_is_legal(self):
        session = make_session()
        for state in (ADMITTED, PLANNING, RUNNING, DONE):
            assert session.transition(state)
        assert session.state == DONE
        assert session.done.is_set()

    def test_illegal_jump_is_rejected(self):
        session = make_session()
        assert not session.transition(RUNNING)  # QUEUED cannot skip ahead
        assert session.state == QUEUED
        assert not session.done.is_set()

    def test_done_not_set_before_terminal(self):
        session = make_session()
        session.transition(ADMITTED)
        session.transition(PLANNING)
        assert not session.done.is_set()


class TestTerminalRaces:
    def test_first_terminal_wins(self):
        session = make_session()
        session.transition(ADMITTED)
        session.transition(PLANNING)
        session.transition(RUNNING)
        assert session.fail(ValueError("boom"))
        assert session.state == FAILED
        first_error = session.error
        # The loser of the race is a no-op, not a corruption.
        assert not session.transition(CANCELLED)
        assert not session.fail(QueryCancelled("late cancel"))
        assert not session.complete({"rows": []})
        assert session.state == FAILED
        assert session.error is first_error
        assert session.result is None

    def test_complete_discards_result_after_cancel(self):
        """A session whose token fired must never surface rows computed
        after the fire — the cancel is the observable outcome."""
        session = make_session()
        session.transition(ADMITTED)
        session.transition(PLANNING)
        session.transition(RUNNING)
        session.token.cancel("operator")
        assert session.complete({"rows": [(1,)]})
        assert session.state == CANCELLED
        assert session.result is None
        assert session.error is not None
        assert session.error["code"] == "cancelled"

    def test_concurrent_writers_reach_exactly_one_terminal(self):
        session = make_session()
        session.transition(ADMITTED)
        session.transition(PLANNING)
        session.transition(RUNNING)
        wins = []
        barrier = threading.Barrier(8)

        def writer(index):
            barrier.wait()
            if index % 2:
                ok = session.fail(ValueError(f"writer {index}"))
            else:
                ok = session.complete({"rows": [(index,)]})
            if ok:
                wins.append(index)

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(wins) == 1
        assert session.state in TERMINAL_STATES
        assert session.done.is_set()
        # Exactly one of result/error is populated, matching the state.
        if session.state == DONE:
            assert session.result is not None and session.error is None
        else:
            assert session.result is None and session.error is not None


class TestFailureClassification:
    @pytest.mark.parametrize(
        "exc, state, code",
        [
            (QueryCancelled("stop"), CANCELLED, "cancelled"),
            (DeadlineExceeded("too slow"), TIMED_OUT, "deadline-exceeded"),
            (ValueError("boom"), FAILED, "service-error"),
        ],
    )
    def test_fail_maps_to_taxonomy(self, exc, state, code):
        session = make_session()
        session.transition(ADMITTED)
        assert session.fail(exc)
        assert session.state == state
        assert session.error["code"] == code

    def test_finish_from_token_deadline(self):
        session = make_session(deadline_s=0.001)
        time.sleep(0.01)
        assert session.finish_from_token()
        assert session.state == TIMED_OUT
        assert session.error["code"] == "deadline-exceeded"

    def test_finish_from_token_cancel(self):
        session = make_session()
        session.token.cancel("shed")
        assert session.finish_from_token()
        assert session.state == CANCELLED
        assert session.error["code"] == "cancelled"


class TestSnapshot:
    def test_snapshot_of_live_session(self):
        session = make_session(deadline_s=30.0)
        session.transition(ADMITTED)
        snap = session.snapshot()
        assert snap["query_id"] == "q-test"
        assert snap["state"] == ADMITTED
        assert snap["terminal"] is False
        assert snap["error"] is None
        assert snap["deadline_s"] == 30.0
        assert 0 < snap["deadline_remaining_s"] <= 30.0
        assert set(snap["state_times"]) == {QUEUED, ADMITTED}
        assert snap["age_s"] >= 0.0

    def test_snapshot_without_deadline(self):
        snap = make_session().snapshot()
        assert snap["deadline_s"] is None
        assert snap["deadline_remaining_s"] is None

    def test_snapshot_of_terminal_session(self):
        session = make_session()
        session.fail(ValueError("boom"))
        snap = session.snapshot()
        assert snap["terminal"] is True
        assert snap["state"] == FAILED
        assert snap["error"]["code"] == "service-error"
