"""Property and unit tests of the fair scheduler (no service, no I/O).

The scheduler is exercised directly with an injected fake clock, so
aging is deterministic and no test sleeps.  The hypothesis properties
pin the fairness contract the two-client drill observes end to end:

* quotas are never exceeded — at no point does any client hold more
  running slots than ``client_max_running`` or more queue seats than
  ``client_max_queued``;
* no starvation — with aging on, *every* enqueued session is eventually
  dequeued however the priorities are stacked against it;
* priority wins — with aging off and no quota interference, a strictly
  higher-priority session always dequeues before a lower one.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AdmissionRejected, QuotaExceeded
from repro.serve.scheduler import (
    PRIORITY_DEFAULT,
    PRIORITY_MAX,
    PRIORITY_MIN,
    FairScheduler,
)
from repro.serve.session import QuerySession


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_session(qid: str, client_id: str = "a", priority: int = PRIORITY_DEFAULT):
    return QuerySession(
        query_id=qid, sql="SELECT x FROM t", client_id=client_id, priority=priority
    )


def make_sched(**kwargs):
    defaults = dict(max_queue=64, max_concurrent=4, clock=FakeClock())
    defaults.update(kwargs)
    return FairScheduler(**defaults)


class TestAdmission:
    def test_queue_full_raises_structured_shed(self):
        sched = make_sched(max_queue=2)
        sched.enqueue(make_session("q1"))
        sched.enqueue(make_session("q2"))
        with pytest.raises(AdmissionRejected) as excinfo:
            sched.check_admit("a")
        assert excinfo.value.details["queued"] == 2
        assert excinfo.value.details["max_queue"] == 2

    def test_client_queue_quota_raises_quota_exceeded(self):
        sched = make_sched(max_queue=64, client_max_queued=2)
        sched.enqueue(make_session("q1", "a"))
        sched.enqueue(make_session("q2", "a"))
        with pytest.raises(QuotaExceeded) as excinfo:
            sched.check_admit("a")
        assert excinfo.value.code == "quota-exceeded"
        assert excinfo.value.details["client_id"] == "a"
        assert excinfo.value.details["client_max_queued"] == 2
        # QuotaExceeded IS an AdmissionRejected: clients catching the
        # broad shed error keep working unmodified.
        assert isinstance(excinfo.value, AdmissionRejected)
        # The quota is per client: another tenant still has seats.
        sched.check_admit("b")

    def test_force_enqueue_bypasses_quota(self):
        # The recovery path re-seats sessions admitted in a past life.
        sched = make_sched(max_queue=1, client_max_queued=1)
        sched.enqueue(make_session("q1", "a"))
        sched.enqueue(make_session("q2", "a"), force=True)
        assert len(sched) == 2

    def test_quota_rejections_are_counted(self):
        sched = make_sched(client_max_queued=1)
        sched.enqueue(make_session("q1", "a"))
        with pytest.raises(QuotaExceeded):
            sched.check_admit("a")
        assert sched.client_stats()["a"]["quota_rejected"] == 1


class TestDequeue:
    def test_higher_priority_dequeues_first(self):
        sched = make_sched(aging_s=0.0)
        sched.enqueue(make_session("low", "a", priority=1))
        sched.enqueue(make_session("high", "b", priority=8))
        assert sched.pop().query_id == "high"
        assert sched.pop().query_id == "low"

    def test_equal_priority_clients_interleave(self):
        # Client a bursts 3 queries before b's 3 arrive; fairness must
        # interleave the two tenants, not drain a's burst first.
        sched = make_sched(aging_s=0.0, max_concurrent=64)
        for i in range(3):
            sched.enqueue(make_session(f"a{i}", "a"))
        for i in range(3):
            sched.enqueue(make_session(f"b{i}", "b"))
        order = [sched.pop().query_id for _ in range(6)]
        clients = [qid[0] for qid in order]
        assert clients == ["a", "b", "a", "b", "a", "b"]

    def test_client_running_quota_parks_not_blocks(self):
        sched = make_sched(aging_s=0.0, client_max_running=1, max_concurrent=4)
        sched.enqueue(make_session("a1", "a", priority=9))
        sched.enqueue(make_session("a2", "a", priority=9))
        sched.enqueue(make_session("b1", "b", priority=0))
        assert sched.pop().query_id == "a1"
        # a is at quota: its priority-9 work is parked, b passes it.
        assert sched.pop().query_id == "b1"
        assert sched.pop() is None  # only a2 left; a still at quota
        assert sched.has_eligible() is False
        sched.release(make_session("a1", "a"))
        assert sched.has_eligible() is True
        assert sched.pop().query_id == "a2"

    def test_max_concurrent_bounds_pops(self):
        sched = make_sched(max_concurrent=2)
        for i in range(3):
            sched.enqueue(make_session(f"q{i}"))
        assert sched.pop() is not None
        assert sched.pop() is not None
        assert sched.pop() is None
        assert sched.total_running == 2

    def test_aging_overtakes_priority(self):
        clock = FakeClock()
        sched = make_sched(aging_s=1.0, clock=clock, max_concurrent=64)
        sched.enqueue(make_session("old-low", "a", priority=0))
        clock.advance(10.0)  # old-low has aged 10 levels by now
        sched.enqueue(make_session("new-high", "b", priority=5))
        assert sched.pop().query_id == "old-low"

    def test_aging_disabled_is_pure_priority(self):
        clock = FakeClock()
        sched = make_sched(aging_s=0.0, clock=clock)
        sched.enqueue(make_session("low", "a", priority=0))
        clock.advance(1e6)
        sched.enqueue(make_session("high", "b", priority=5))
        assert sched.pop().query_id == "high"


class TestRemoval:
    def test_remove_is_idempotent(self):
        sched = make_sched()
        session = make_session("q1")
        sched.enqueue(session)
        assert sched.remove(session) is True
        assert sched.remove(session) is False
        assert sched.client_stats()["a"]["queued"] == 0

    def test_reap_fired_single_pass(self):
        sched = make_sched()
        sessions = [make_session(f"q{i}") for i in range(6)]
        for session in sessions:
            sched.enqueue(session)
        for session in sessions[::2]:
            session.token.cancel("fired")
        reaped = sched.reap_fired()
        assert sorted(s.query_id for s in reaped) == ["q0", "q2", "q4"]
        assert sorted(s.query_id for s in sched.queued_sessions()) == [
            "q1",
            "q3",
            "q5",
        ]
        assert sched.reap_fired() == []  # nothing reaped twice

    def test_drain_empties_and_rebalances_counts(self):
        sched = make_sched()
        for i in range(4):
            sched.enqueue(make_session(f"q{i}", client_id=f"c{i % 2}"))
        drained = sched.drain()
        assert len(drained) == 4 and len(sched) == 0
        for stats in sched.client_stats().values():
            assert stats["queued"] == 0


# -- hypothesis properties ------------------------------------------------

# A workload: per-submit (client index, priority).  Interleaved with
# releases by the executor below.
submission = st.tuples(
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=PRIORITY_MIN, max_value=PRIORITY_MAX),
)


@settings(max_examples=60, deadline=None)
@given(subs=st.lists(submission, min_size=1, max_size=40))
def test_property_quotas_never_exceeded(subs):
    """Drive arbitrary submit/pop/release schedules; at every step no
    client exceeds its running or queue quota and the global bounds hold."""
    clock = FakeClock()
    sched = FairScheduler(
        max_queue=8,
        max_concurrent=3,
        client_max_running=1,
        client_max_queued=2,
        aging_s=5.0,
        clock=clock,
    )
    running = []
    counter = 0
    for step, (client_idx, priority) in enumerate(subs):
        client_id = f"c{client_idx}"
        counter += 1
        try:
            sched.check_admit(client_id)
        except AdmissionRejected:
            pass
        else:
            sched.enqueue(
                make_session(f"q{counter}", client_id, priority=priority)
            )
        if step % 3 == 2 and running:
            sched.release(running.pop(0))
        popped = sched.pop()
        if popped is not None:
            running.append(popped)
        clock.advance(1.0)
        # Invariants, every step:
        assert len(sched) <= sched.max_queue
        assert sched.total_running <= sched.max_concurrent
        for stats in sched.client_stats().values():
            assert stats["queued"] <= sched.client_max_queued
            assert stats["running"] <= sched.client_max_running
            assert stats["queued"] >= 0 and stats["running"] >= 0


@settings(max_examples=60, deadline=None)
@given(subs=st.lists(submission, min_size=1, max_size=30))
def test_property_no_starvation_with_aging(subs):
    """With aging on, every enqueued session is eventually dequeued —
    whatever adversarial priorities arrive after it."""
    clock = FakeClock()
    sched = FairScheduler(
        max_queue=1024, max_concurrent=1, aging_s=1.0, clock=clock
    )
    enqueued = []
    for i, (client_idx, priority) in enumerate(subs):
        session = make_session(f"q{i}", f"c{client_idx}", priority=priority)
        sched.enqueue(session)
        enqueued.append(session)
        clock.advance(0.25)
    popped = []
    for _ in range(len(enqueued)):
        session = sched.pop()
        assert session is not None
        popped.append(session.query_id)
        sched.release(session)
        clock.advance(0.25)
    assert sorted(popped) == sorted(s.query_id for s in enqueued)
    assert sched.pop() is None


@settings(max_examples=60, deadline=None)
@given(
    low=st.integers(min_value=PRIORITY_MIN, max_value=PRIORITY_MAX - 2),
    gap=st.integers(min_value=2, max_value=PRIORITY_MAX),
    n_low=st.integers(min_value=1, max_value=6),
)
def test_property_priority_respected_without_aging(low, gap, n_low):
    """Aging off: a session more than one full level above every other
    dequeues first, regardless of arrival order or client spread."""
    high = min(PRIORITY_MAX, low + gap)
    sched = make_sched(aging_s=0.0, max_concurrent=64)
    for i in range(n_low):
        sched.enqueue(make_session(f"low{i}", f"c{i % 3}", priority=low))
    sched.enqueue(make_session("high", "vip", priority=high))
    assert sched.pop().query_id == "high"


@settings(max_examples=40, deadline=None)
@given(
    waits=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=2,
        max_size=10,
    )
)
def test_property_aged_dequeue_order_is_effective_priority_order(waits):
    """All else equal (one client, same base priority), dequeue order is
    exactly longest-waiting first — aging is monotone in wait time."""
    clock = FakeClock()
    sched = FairScheduler(
        max_queue=1024, max_concurrent=1024, aging_s=1.0, clock=clock
    )
    for i, wait in enumerate(sorted(waits, reverse=True)):
        clock.now = 1000.0 - wait  # enqueue q_i 'wait' seconds ago
        sched.enqueue(make_session(f"q{i}", "a", priority=1))
    clock.now = 1000.0
    expected = [f"q{i}" for i in range(len(waits))]
    got = [sched.pop().query_id for _ in range(len(waits))]
    assert got == expected
