"""The ISSUE-7 acceptance chaos drill.

One live :class:`QueryService` over a real spawned worker fleet, with
every failure mode at once:

* N >= 3 concurrent queries running over the distributed backend,
* one worker killed mid-phase (wire-armed kill fault),
* one query cancelled, one query past its deadline,

and the promises under test:

* every surviving query's rows are **bit-identical** to a serial run,
* the dead queries return structured taxonomy errors, the expired one
  within 2x its deadline,
* no session hangs, and the backend's in-flight accounting is zero
  afterwards,
* the fleet can then be live-reconfigured around the corpse and keeps
  answering correctly.

Planning caches are warmed by the serial baseline phase first — the
deadline bound measures the service's reaction latency, not a cold
statistics build.
"""

import sys
import time
from pathlib import Path

import pytest

from repro.mapreduce.backend import close_backends
from repro.mapreduce.wire import closure_transport_available
from repro.serve.chaos import ChaosEvent, ChaosHarness
import repro
from repro.serve.coordinator import QueryService
from repro.serve.session import CANCELLED, DONE, TIMED_OUT

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "mapreduce"))
from conformance import (  # noqa: E402
    assert_distributed_really_dispatched,
    execution_env,
    worker_pool,
)

pytestmark = pytest.mark.skipif(
    not closure_transport_available(),
    reason="cloudpickle unavailable: closures cannot ship over TCP",
)

#: Three distinct survivor queries (different shapes + seeds), plus the
#: doomed ones, all on the small mobile relation set.
SURVIVORS = [
    {
        "sql": (
            "SELECT t2.id FROM table t1, table t2 "
            "WHERE t1.d = t2.d AND t1.bt <= t2.bt"
        ),
        "seed": 0,
    },
    {
        "sql": (
            "SELECT t1.id FROM table t1, table t2 "
            "WHERE t1.d = t2.d AND t1.bt < t2.bt"
        ),
        "seed": 1,
    },
    {
        "sql": (
            "SELECT t1.id, t2.id FROM table t1, table t2 "
            "WHERE t1.bsc = t2.bsc AND t1.bt <= t2.bt"
        ),
        "seed": 2,
    },
]

DEADLINE_S = 0.75


def wait_terminal(client, query_id, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        snap = client.status(query_id)
        if snap["terminal"]:
            return snap
        time.sleep(0.02)
    raise AssertionError(f"query {query_id} hung: {client.status(query_id)}")


def test_chaos_drill():
    with worker_pool(3) as addrs:
        with execution_env(
            REPRO_EXEC_BACKEND="distributed",
            REPRO_WORKERS_ADDRS=",".join(addrs),
            REPRO_WORKER_HEARTBEAT_S="0.2",
            REPRO_TASK_RETRIES="2",
        ):
            close_backends()
            service = QueryService(max_concurrent=6, max_queue=8).start()
            try:
                with repro.connect(service.address, timeout_s=30.0) as client:
                    _drill(service, client, addrs)
            finally:
                service.stop()
                close_backends()


def _drill(service, client, addrs):
    # ----- phase 0: serial baselines (also warms planning + relations) --
    baselines = [
        client.run(
            spec["sql"],
            seed=spec["seed"],
            knobs={"REPRO_EXEC_BACKEND": "serial"},
            timeout_s=120.0,
        )["rows"]
        for spec in SURVIVORS
    ]
    assert all(baselines), "degenerate baseline: a survivor query has no rows"

    # ----- phase 1: arm the chaos schedule ------------------------------
    # Worker 0 dies after executing two tasks of the concurrent phase —
    # i.e. mid-phase, with this run's work in flight on its socket.
    harness = ChaosHarness([ChaosEvent(addrs[0], "kill", after_tasks=2)])
    harness.start()
    assert harness.wait(timeout_s=5.0), f"chaos arming failed: {harness.failed}"
    assert not harness.failed

    # ----- phase 2: the concurrent storm --------------------------------
    # Everything is submitted while the test thread holds the planning
    # lock, so all five sessions are genuinely concurrent (parked at the
    # same gate) and the cancel/deadline outcomes are race-free.
    submitted_at = {}
    with service._planning_lock:
        survivor_ids = []
        for spec in SURVIVORS:
            query_id = client.submit(spec["sql"], seed=spec["seed"])
            submitted_at[query_id] = time.monotonic()
            survivor_ids.append(query_id)
        doomed_id = client.submit(
            SURVIVORS[0]["sql"], seed=0, deadline_s=DEADLINE_S
        )
        submitted_at[doomed_id] = time.monotonic()
        cancelled_id = client.submit(SURVIVORS[1]["sql"], seed=1)
        submitted_at[cancelled_id] = time.monotonic()
        client.cancel(cancelled_id, "chaos drill cancel")
        # Hold the gate until the doomed query's budget is burnt.
        time.sleep(DEADLINE_S + 0.15)

    # ----- phase 3: the promises ----------------------------------------
    # 3a. Survivors: bit-identical to serial, despite the killed worker.
    for query_id, expected in zip(survivor_ids, baselines):
        snap = wait_terminal(client, query_id)
        assert snap["state"] == DONE, f"{query_id} ended {snap['state']}: {snap}"
        assert client.result(query_id, timeout_s=5.0)["result"]["rows"] == expected

    # 3b. The expired query: structured taxonomy error, within 2x deadline.
    snap = wait_terminal(client, doomed_id, timeout_s=2 * DEADLINE_S)
    terminal_at = time.monotonic()
    assert snap["state"] == TIMED_OUT
    assert snap["error"]["code"] == "deadline-exceeded"
    assert terminal_at - submitted_at[doomed_id] <= 2 * DEADLINE_S, (
        "expired query took longer than 2x its deadline to terminalize"
    )

    # 3c. The cancelled query: structured taxonomy error, never DONE.
    snap = wait_terminal(client, cancelled_id, timeout_s=10.0)
    assert snap["state"] == CANCELLED
    assert snap["error"]["code"] == "cancelled"

    # 3d. No hung sessions anywhere, no leaked in-flight tasks.
    for query_id in submitted_at:
        assert client.status(query_id)["terminal"]
    stats = client.stats()
    assert stats["tasks_in_flight"] == 0
    assert stats["done"] == len(SURVIVORS) + len(baselines)
    assert stats["timed_out"] == 1
    assert stats["cancelled"] == 1
    assert stats["failed"] == 0

    # 3e. The distributed leg really dispatched (no silent serial run).
    assert_distributed_really_dispatched(addrs)

    # ----- phase 4: live reconfiguration around the corpse ---------------
    survivors_fleet = ",".join(addrs[1:])
    delta = client.fleet(survivors_fleet)
    assert addrs[0] in delta["removed"]
    assert delta["addrs"] == list(addrs[1:])
    rerun = client.run(SURVIVORS[0]["sql"], seed=0, timeout_s=120.0)
    assert rerun["rows"] == baselines[0]
    assert client.stats()["tasks_in_flight"] == 0
