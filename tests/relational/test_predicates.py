"""Tests for theta operators, predicates, and join conditions."""

import pytest

from repro.errors import QueryError
from repro.relational.predicates import (
    AttrRef,
    JoinCondition,
    JoinPredicate,
    ThetaOp,
)
from repro.relational.schema import Schema


class TestThetaOp:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            (ThetaOp.LT, 1, 2, True),
            (ThetaOp.LT, 2, 2, False),
            (ThetaOp.LE, 2, 2, True),
            (ThetaOp.EQ, 3, 3, True),
            (ThetaOp.EQ, 3, 4, False),
            (ThetaOp.GE, 4, 4, True),
            (ThetaOp.GT, 5, 4, True),
            (ThetaOp.NE, 5, 4, True),
            (ThetaOp.NE, 4, 4, False),
        ],
    )
    def test_evaluate(self, op, a, b, expected):
        assert op.evaluate(a, b) is expected

    def test_all_six_operators_exist(self):
        assert {op.symbol for op in ThetaOp} == {"<", "<=", "=", ">=", ">", "!="}

    @pytest.mark.parametrize("op", list(ThetaOp))
    def test_swapped_is_involution(self, op):
        assert op.swapped().swapped() is op

    def test_swapped_semantics(self):
        # a < b  <=>  b > a, for all test values.
        for a in range(3):
            for b in range(3):
                assert ThetaOp.LT.evaluate(a, b) == ThetaOp.GT.evaluate(b, a)
                assert ThetaOp.LE.evaluate(a, b) == ThetaOp.GE.evaluate(b, a)

    def test_from_symbol_aliases(self):
        assert ThetaOp.from_symbol("<>") is ThetaOp.NE
        assert ThetaOp.from_symbol("==") is ThetaOp.EQ
        with pytest.raises(QueryError):
            ThetaOp.from_symbol("~")


class TestJoinPredicate:
    def test_parse_simple(self):
        p = JoinPredicate.parse("t1.bt <= t2.bt")
        assert p.left == AttrRef("t1", "bt")
        assert p.op is ThetaOp.LE
        assert p.right == AttrRef("t2", "bt")

    def test_parse_with_offset(self):
        p = JoinPredicate.parse("t1.d + 3 > t3.d")
        assert p.left.offset == 3
        assert p.op is ThetaOp.GT

    def test_parse_negative_offset(self):
        p = JoinPredicate.parse("a.x - 2 < b.y")
        assert p.left.offset == -2

    def test_parse_rejects_garbage(self):
        with pytest.raises(QueryError):
            JoinPredicate.parse("no operator here")
        with pytest.raises(QueryError):
            JoinPredicate.parse("a < b")  # missing alias.attr form

    def test_same_alias_rejected(self):
        with pytest.raises(QueryError):
            JoinPredicate.parse("t1.a < t1.b")

    def test_evaluate_values_with_offsets(self):
        p = JoinPredicate.parse("a.x + 3 > b.y")
        assert p.evaluate_values(1, 3) is True   # 1+3 > 3
        assert p.evaluate_values(0, 3) is False  # 0+3 > 3 is false

    def test_oriented_swaps_sides(self):
        p = JoinPredicate.parse("a.x < b.y")
        flipped = p.oriented("b")
        assert flipped.left.alias == "b"
        assert flipped.op is ThetaOp.GT
        # Semantics preserved:
        assert p.evaluate_values(1, 5) == flipped.evaluate_values(5, 1)

    def test_oriented_noop_when_already_left(self):
        p = JoinPredicate.parse("a.x < b.y")
        assert p.oriented("a") is p

    def test_oriented_unknown_alias(self):
        with pytest.raises(QueryError):
            JoinPredicate.parse("a.x < b.y").oriented("z")


class TestJoinCondition:
    def test_parse_multiple_predicates(self):
        c = JoinCondition.parse(1, "t1.bt <= t2.bt", "t1.l >= t2.l")
        assert len(c.predicates) == 2
        assert c.aliases == ("t1", "t2")

    def test_condition_requires_same_pair(self):
        with pytest.raises(QueryError):
            JoinCondition.parse(1, "a.x < b.y", "a.x < c.y")

    def test_condition_requires_predicates(self):
        with pytest.raises(QueryError):
            JoinCondition(1, [])

    def test_is_pure_equi(self):
        assert JoinCondition.parse(1, "a.x = b.y").is_pure_equi
        assert not JoinCondition.parse(1, "a.x = b.y", "a.z < b.w").is_pure_equi
        assert not JoinCondition.parse(1, "a.x + 1 = b.y").is_pure_equi

    def test_other_alias(self):
        c = JoinCondition.parse(7, "a.x < b.y")
        assert c.other_alias("a") == "b"
        with pytest.raises(QueryError):
            c.other_alias("z")

    def test_evaluate_conjunction(self):
        schema = Schema.of("x:int", "y:int")
        c = JoinCondition.parse(1, "a.x < b.x", "a.y >= b.y")
        schemas = {"a": schema, "b": schema}
        assert c.evaluate({"a": (1, 5), "b": (2, 5)}, schemas) is True
        assert c.evaluate({"a": (1, 4), "b": (2, 5)}, schemas) is False

    def test_touches(self):
        c = JoinCondition.parse(1, "a.x < b.y")
        assert c.touches("a") and c.touches("b") and not c.touches("c")
