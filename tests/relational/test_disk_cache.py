"""Disk persistence of the PlanningCache: round-trips, corruption
tolerance, and fingerprint invalidation.

The disk tier must be a pure accelerator: a fresh process (simulated
here by a fresh :class:`PlanningCache` over the same store) gets
identical samples/statistics/observations without recomputing, while a
corrupt, truncated, stale-format, or colliding file can only ever cause
a recompute — never a wrong answer.
"""

import pickle

import pytest

from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.stats_cache import (
    DiskCacheStore,
    PlanningCache,
    _stable_key_repr,
    get_planning_cache,
    relation_fingerprint,
    reset_default_planning_cache,
)


def make_relation(name="r", rows=200, offset=0):
    return Relation(
        name,
        Schema.of("id:int", "v:int"),
        [(i, (i * 7 + offset) % 31) for i in range(rows)],
    )


@pytest.fixture
def store(tmp_path):
    return DiskCacheStore(tmp_path / "planning")


class TestDiskRoundTrip:
    def test_sample_round_trip_across_cache_instances(self, store):
        relation = make_relation()
        first = PlanningCache(disk=store)
        sample = first.sample(relation, "a", 50)

        fresh = PlanningCache(disk=store)  # same store, empty memory
        again = fresh.sample(relation, "a", 50)
        assert again.rows == sample.rows
        assert again.schema.row_width == sample.schema.row_width
        assert fresh.counters()["disk"]["hits"] == 1

    def test_stats_round_trip(self, store):
        relation = make_relation()
        stats = PlanningCache(disk=store).relation_stats(relation, sample_size=100)
        again = PlanningCache(disk=store).relation_stats(relation, sample_size=100)
        assert again.cardinality == stats.cardinality
        assert sorted(again.columns) == sorted(stats.columns)
        for name in stats.columns:
            assert again.column(name).distinct == stats.column(name).distinct

    def test_join_observation_round_trip(self, store):
        signature = (
            (("a", relation_fingerprint(make_relation())),),
            frozenset({(("a", "v", 0), "=", ("b", "v", 0))}),
            400,
            3_000_000,
        )
        PlanningCache(disk=store).store_join_observation(signature, (3, 1600))
        hit, observation = PlanningCache(disk=store).join_observation(signature)
        assert hit and observation == (3, 1600)

    def test_cached_none_observation_round_trips(self, store):
        """A work-cap overflow (``None``) is a *hit*, distinct from a miss."""
        signature = (("a",), frozenset(), 1, 1)
        PlanningCache(disk=store).store_join_observation(signature, None)
        hit, observation = PlanningCache(disk=store).join_observation(signature)
        assert hit and observation is None

    def test_disk_equal_to_recompute(self, store):
        """Disk-served values equal freshly computed ones exactly."""
        relation = make_relation()
        disk_sample = PlanningCache(disk=store).sample(relation, "x", 40)
        again = PlanningCache(disk=store).sample(relation, "x", 40)
        pure = PlanningCache().sample(relation, "x", 40)
        assert again.rows == pure.rows == disk_sample.rows


class TestCorruptionTolerance:
    def entry_paths(self, store):
        return [
            p
            for table in ("samples", "stats", "joins")
            for p in sorted((store.root / table).glob("*.pkl"))
            if (store.root / table).exists()
        ]

    def test_garbage_file_is_ignored_and_rebuilt(self, store):
        relation = make_relation()
        PlanningCache(disk=store).sample(relation, "a", 50)
        (path,) = self.entry_paths(store)
        path.write_bytes(b"this is not a pickle")

        rebuilt = PlanningCache(disk=store).sample(relation, "a", 50)
        assert rebuilt.rows == PlanningCache().sample(relation, "a", 50).rows
        assert store.errors == 1
        # The bad file was replaced by a fresh, loadable one.
        (path_after,) = self.entry_paths(store)
        assert path_after == path
        assert pickle.loads(path.read_bytes())["table"] == "samples"

    def test_truncated_file_is_ignored(self, store):
        relation = make_relation()
        PlanningCache(disk=store).sample(relation, "a", 50)
        (path,) = self.entry_paths(store)
        path.write_bytes(path.read_bytes()[:10])
        rebuilt = PlanningCache(disk=store).sample(relation, "a", 50)
        assert rebuilt.rows == PlanningCache().sample(relation, "a", 50).rows

    def test_stale_format_is_ignored(self, store):
        relation = make_relation()
        PlanningCache(disk=store).sample(relation, "a", 50)
        (path,) = self.entry_paths(store)
        payload = pickle.loads(path.read_bytes())
        payload["format"] = -1
        path.write_bytes(pickle.dumps(payload))
        rebuilt = PlanningCache(disk=store).sample(relation, "a", 50)
        assert rebuilt.rows == PlanningCache().sample(relation, "a", 50).rows

    def test_other_code_version_is_ignored(self, store):
        """Entries written by a different repro version must read as
        misses — pickled class layouts can change without failing to
        unpickle, so a version mismatch must never serve a hit."""
        relation = make_relation()
        PlanningCache(disk=store).sample(relation, "a", 50)
        (path,) = self.entry_paths(store)
        payload = pickle.loads(path.read_bytes())
        payload["version"] = "0.0.0-older"
        path.write_bytes(pickle.dumps(payload))
        hits_before = store.hits
        rebuilt = PlanningCache(disk=store).sample(relation, "a", 50)
        assert store.hits == hits_before
        assert rebuilt.rows == PlanningCache().sample(relation, "a", 50).rows

    def test_key_mismatch_is_ignored(self, store):
        """A digest collision (stored key != requested key) must miss."""
        relation = make_relation()
        PlanningCache(disk=store).sample(relation, "a", 50)
        (path,) = self.entry_paths(store)
        payload = pickle.loads(path.read_bytes())
        payload["key"] = ("someone", "else's", "key")
        path.write_bytes(pickle.dumps(payload))
        hit, _ = store.load("samples", (relation_fingerprint(relation), "a", 50))
        assert not hit

    def test_unwritable_store_degrades_gracefully(self, tmp_path):
        target = tmp_path / "not-a-dir"
        target.write_text("file in the way")
        store = DiskCacheStore(target / "planning")
        cache = PlanningCache(disk=store)
        sample = cache.sample(make_relation(), "a", 30)
        assert sample.rows == PlanningCache().sample(make_relation(), "a", 30).rows
        assert store.errors >= 1


class TestFingerprintInvalidation:
    def test_content_change_orphans_disk_entries(self, store):
        relation = make_relation()
        stale = PlanningCache(disk=store).sample(relation, "a", 50)
        relation.append((10_000, 3))  # fingerprint changes with content

        fresh = PlanningCache(disk=store)
        resampled = fresh.sample(relation, "a", 50)
        assert fresh.counters()["disk"]["hits"] == 0
        assert resampled.rows != stale.rows or len(relation) != 200

    def test_invalidate_drops_disk_entries(self, store):
        cache = PlanningCache(disk=store)
        cache.sample(make_relation("doomed"), "a", 50)
        cache.relation_stats(make_relation("doomed"), sample_size=100)
        cache.sample(make_relation("kept"), "a", 50)
        dropped = cache.invalidate("doomed")
        assert dropped >= 2  # memory + disk entries for both tables
        survivor = PlanningCache(disk=store)
        survivor.sample(make_relation("kept"), "a", 50)
        assert survivor.counters()["disk"]["hits"] == 1
        hits_before = store.hits
        rebuilt = PlanningCache(disk=store)
        rebuilt.sample(make_relation("doomed"), "a", 50)
        assert store.hits == hits_before  # dropped entry cannot be served

    def test_clear_disk(self, store):
        cache = PlanningCache(disk=store)
        cache.sample(make_relation(), "a", 50)
        cache.clear(disk=True)
        fresh = PlanningCache(disk=store)
        fresh.sample(make_relation(), "a", 50)
        assert fresh.counters()["disk"]["hits"] == 0


class TestStableKeyRepr:
    def test_frozenset_order_is_canonical(self):
        a = frozenset({("x", "y", 0), ("p", "q", 1), ("m", "n", 2)})
        parts = sorted(_stable_key_repr(k) for k in a)
        assert _stable_key_repr(a) == "{" + ",".join(parts) + "}"

    def test_nested_structures(self):
        key = ((("a", ("r", 3, "beef")),), frozenset({(1, 2), (3, 4)}), 400)
        assert _stable_key_repr(key) == _stable_key_repr(key)
        assert "{((1,2)),((3,4))}" not in _stable_key_repr(key)  # tuples intact


class TestDefaultCacheWiring:
    def test_env_enables_disk_tier(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PLAN_DISK_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        reset_default_planning_cache()
        try:
            cache = get_planning_cache()
            assert cache.disk is not None
            assert str(cache.disk.root).startswith(str(tmp_path))
        finally:
            reset_default_planning_cache()

    def test_default_is_memory_only(self, monkeypatch):
        monkeypatch.delenv("REPRO_PLAN_DISK_CACHE", raising=False)
        reset_default_planning_cache()
        try:
            assert get_planning_cache().disk is None
        finally:
            reset_default_planning_cache()

    def test_prune_bounds_table(self, tmp_path):
        store = DiskCacheStore(tmp_path / "planning", max_entries_per_table=4)
        for i in range(128):  # crosses the every-128-stores prune point
            store.store("joins", ("sig", i), (i, 100))
        store._prune(store.root / "joins")
        remaining = list((store.root / "joins").glob("*.pkl"))
        assert len(remaining) <= 4
