"""Tests for the sampling-based joint selectivity estimator."""

import pytest

from repro.relational.predicates import JoinCondition
from repro.relational.query import JoinQuery
from repro.relational.relation import Relation
from repro.relational.sampling import SampledJoinEstimator
from repro.relational.schema import Schema
from repro.relational.statistics import StatisticsCatalog
from repro.utils import make_rng


def rel(name, rows, seed=0):
    rng = make_rng("sampling-test", name, seed)
    return Relation(
        name,
        Schema.of("id:int", "v:int", "d:int"),
        [
            (i, rng.randint(0, 99), rng.randint(1, 30))
            for i in range(rows)
        ],
    )


def estimator_for(query):
    catalog = StatisticsCatalog()
    for relation in query.relations.values():
        if relation.name not in catalog:
            catalog.add_relation(relation)
    return SampledJoinEstimator(query, catalog)


def true_selectivity(query, conditions):
    from repro.joins.reference import reference_join

    sub = JoinQuery(
        "truth",
        {
            a: query.relations[a]
            for c in conditions
            for a in c.aliases
        },
        conditions,
    )
    matches = len(reference_join(sub))
    denom = 1.0
    for alias in sub.relations:
        denom *= len(sub.relations[alias])
    return matches / denom


class TestSingleCondition:
    def test_close_to_truth_range(self):
        query = JoinQuery(
            "q",
            {"a": rel("A", 200), "b": rel("B", 180, seed=1)},
            [JoinCondition.parse(1, "a.v < b.v")],
        )
        est = estimator_for(query)
        truth = true_selectivity(query, list(query.conditions))
        approx = est.selectivity(list(query.conditions))
        assert approx == pytest.approx(truth, rel=0.15)

    def test_empty_conditions_are_one(self):
        query = JoinQuery(
            "q",
            {"a": rel("A", 10), "b": rel("B", 10, seed=1)},
            [JoinCondition.parse(1, "a.v < b.v")],
        )
        assert estimator_for(query).selectivity([]) == 1.0

    def test_cached(self):
        query = JoinQuery(
            "q",
            {"a": rel("A", 50), "b": rel("B", 50, seed=1)},
            [JoinCondition.parse(1, "a.v < b.v")],
        )
        est = estimator_for(query)
        first = est.selectivity(list(query.conditions))
        assert est.selectivity(list(query.conditions)) == first


class TestCorrelatedConditions:
    def test_triangle_correlation_captured(self):
        """The product-of-histograms estimate is off by orders of magnitude
        on a windowed triangle; the sample join must get close."""
        query = JoinQuery(
            "tri",
            {"a": rel("A", 90), "b": rel("B", 90, seed=1), "c": rel("C", 90, seed=2)},
            [
                JoinCondition.parse(1, "a.d < b.d"),
                JoinCondition.parse(2, "b.d < c.d"),
                JoinCondition.parse(3, "a.d + 3 > c.d"),
            ],
        )
        est = estimator_for(query)
        truth = true_selectivity(query, list(query.conditions))
        approx = est.selectivity(list(query.conditions))
        assert approx == pytest.approx(truth, rel=0.35)
        # And it is far below the independence product (~0.5*0.5*0.55).
        assert approx < 0.02

    def test_zero_matches_dont_return_zero(self):
        low = Relation("LOW3", Schema.of("v:int"), [(i,) for i in range(50)])
        high = Relation("HIGH3", Schema.of("v:int"), [(i + 1000,) for i in range(50)])
        query = JoinQuery(
            "disj", {"a": low, "b": high}, [JoinCondition.parse(1, "a.v > b.v")]
        )
        est = estimator_for(query)
        sel = est.selectivity(list(query.conditions))
        assert 0.0 < sel < 1e-3

    def test_expected_rows(self):
        query = JoinQuery(
            "q",
            {"a": rel("A", 100), "b": rel("B", 100, seed=1)},
            [JoinCondition.parse(1, "a.v <= b.v")],
        )
        est = estimator_for(query)
        rows = est.expected_rows(list(query.conditions))
        truth = true_selectivity(query, list(query.conditions)) * 100 * 100
        assert rows == pytest.approx(truth, rel=0.2)


class TestWorkCap:
    def test_cap_falls_back_to_histograms(self):
        query = JoinQuery(
            "q",
            {"a": rel("A", 150), "b": rel("B", 150, seed=1)},
            [JoinCondition.parse(1, "a.v < b.v")],
        )
        catalog = StatisticsCatalog()
        for relation in query.relations.values():
            catalog.add_relation(relation)
        tiny_cap = SampledJoinEstimator(query, catalog, work_cap=10)
        sel = tiny_cap.selectivity(list(query.conditions))
        # Histogram fallback still gives a sane ballpark for uniform <.
        assert 0.2 < sel < 0.8
