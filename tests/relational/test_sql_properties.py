"""Property-based tests for the SQL-ish front end (Section 6.3.1 dialect)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.predicates import ThetaOp
from repro.relational.sql import parse_join_query
from repro.workloads.synthetic import uniform_relation

OPS = [op.symbol for op in ThetaOp]
ATTRS = ["v0", "v1"]


@st.composite
def sql_queries(draw):
    """A random chain query rendered in the paper's SQL-like style."""
    num_relations = draw(st.integers(min_value=2, max_value=5))
    aliases = [f"t{i + 1}" for i in range(num_relations)]
    predicates = []
    rendered = []
    for index in range(num_relations - 1):
        left, right = aliases[index], aliases[index + 1]
        op = draw(st.sampled_from(OPS))
        left_attr = draw(st.sampled_from(ATTRS))
        right_attr = draw(st.sampled_from(ATTRS))
        offset = draw(st.integers(min_value=-9, max_value=9))
        suffix = f" + {offset}" if offset > 0 else (f" - {-offset}" if offset < 0 else "")
        rendered.append(f"{left}.{left_attr} {op} {right}.{right_attr}{suffix}")
        predicates.append((left, left_attr, op, right, right_attr, float(offset)))
    connector = draw(st.sampled_from([" AND ", ", ", " and "]))
    select = draw(st.sampled_from(["*", f"{aliases[0]}.v0", f"{aliases[-1]}.v1, {aliases[0]}.v0"]))
    sql = (
        f"SELECT {select} FROM "
        + ", ".join(f"rel {alias}" for alias in aliases)
        + " WHERE "
        + connector.join(rendered)
    )
    return sql, aliases, predicates, select


class TestParseProperties:
    @given(sql_queries())
    @settings(max_examples=60, deadline=None)
    def test_aliases_and_conditions_recovered(self, case):
        sql, aliases, predicates, _select = case
        relations = {"rel": uniform_relation("rel", 10)}
        query = parse_join_query(sql, relations)
        assert sorted(query.aliases) == sorted(aliases)
        parsed = [
            predicate
            for condition in query.conditions
            for predicate in condition.predicates
        ]
        assert len(parsed) == len(predicates)

    @given(sql_queries())
    @settings(max_examples=60, deadline=None)
    def test_operators_and_offsets_preserved(self, case):
        sql, _aliases, predicates, _select = case
        relations = {"rel": uniform_relation("rel", 10)}
        query = parse_join_query(sql, relations)
        parsed = {
            (p.left.alias, p.left.attr, p.op.symbol, p.right.alias,
             p.right.attr, p.right.offset - p.left.offset)
            for c in query.conditions
            for p in c.predicates
        }
        expected = {
            # The renderer puts the offset on the right side.
            (l, la, {"<>": "!="}.get(op, op), r, ra, off)
            for l, la, op, r, ra, off in predicates
        }
        assert parsed == expected

    @given(sql_queries())
    @settings(max_examples=40, deadline=None)
    def test_projection_parsed(self, case):
        sql, _aliases, _predicates, select = case
        relations = {"rel": uniform_relation("rel", 10)}
        query = parse_join_query(sql, relations)
        if select == "*":
            assert query.projection is None
        else:
            expected = [
                tuple(item.strip().split(".")) for item in select.split(",")
            ]
            assert list(query.projection) == [(a, f) for a, f in expected]

    @given(sql_queries())
    @settings(max_examples=40, deadline=None)
    def test_conditions_group_by_relation_pair(self, case):
        """Predicates between the same pair collapse into one edge."""
        sql, _aliases, _predicates, _select = case
        relations = {"rel": uniform_relation("rel", 10)}
        query = parse_join_query(sql, relations)
        pairs = [frozenset(c.aliases) for c in query.conditions]
        assert len(pairs) == len(set(pairs))
