"""Tests for column statistics and theta selectivity estimation."""

import pytest

from repro.relational.predicates import JoinCondition, JoinPredicate
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.statistics import (
    SelectivityEstimator,
    StatisticsCatalog,
    compute_column_stats,
    compute_relation_stats,
)
from repro.utils import make_rng


def uniform_rel(name: str, n: int, hi: int = 1000, seed: int = 0) -> Relation:
    rng = make_rng("stats-test", name, seed)
    schema = Schema.of("id:int", "v:int")
    return Relation(name, schema, [(i, rng.randint(0, hi - 1)) for i in range(n)])


class TestColumnStats:
    def test_min_max_count_distinct(self):
        stats = compute_column_stats("v", [5, 1, 9, 1, 3])
        assert stats.min_value == 1
        assert stats.max_value == 9
        assert stats.count == 5
        assert stats.distinct == 4

    def test_fraction_below_extremes(self):
        stats = compute_column_stats("v", list(range(100)))
        assert stats.fraction_below(-1, inclusive=False) == 0.0
        assert stats.fraction_below(1000, inclusive=True) == 1.0

    def test_fraction_below_midpoint(self):
        stats = compute_column_stats("v", list(range(100)))
        mid = stats.fraction_below(50, inclusive=False)
        assert 0.4 < mid < 0.6

    def test_fraction_below_monotone(self):
        stats = compute_column_stats("v", [make_rng("m", i).randint(0, 99) for i in range(200)])
        fracs = [stats.fraction_below(x, inclusive=False) for x in range(0, 100, 5)]
        assert fracs == sorted(fracs)

    def test_empty_column(self):
        stats = compute_column_stats("v", [])
        assert stats.count == 0
        assert stats.fraction_below(5, inclusive=True) == 0.0

    def test_string_column_rank_transform(self):
        stats = compute_column_stats("v", ["b", "a", "c", "a"])
        assert stats.distinct == 3
        assert stats.count == 4


class TestRelationStats:
    def test_exact_cardinality_with_sampling(self):
        relation = uniform_rel("R", 5000)
        stats = compute_relation_stats(relation, sample_size=100)
        assert stats.cardinality == 5000
        assert stats.size_bytes == relation.size_bytes

    def test_all_columns_covered(self):
        relation = uniform_rel("R", 50)
        stats = compute_relation_stats(relation)
        assert set(stats.columns) == {"id", "v"}


class TestSelectivityEstimator:
    @pytest.fixture
    def estimator(self):
        catalog = StatisticsCatalog()
        catalog.add_relation(uniform_rel("L", 2000))
        catalog.add_relation(uniform_rel("R", 2000, seed=1))
        return catalog, SelectivityEstimator(catalog)

    def _true_selectivity(self, predicate, left, right):
        hits = 0
        for lrow in left:
            for rrow in right:
                if predicate.evaluate_values(lrow[1], rrow[1]):
                    hits += 1
        return hits / (len(left) * len(right))

    @pytest.mark.parametrize("text", ["a.v < b.v", "a.v >= b.v", "a.v <= b.v"])
    def test_range_estimates_close_to_truth(self, estimator, text):
        catalog, est = estimator
        predicate = JoinPredicate.parse(text)
        approx = est.predicate_selectivity(predicate, "L", "R")
        assert abs(approx - 0.5) < 0.1

    def test_offset_shifts_selectivity(self, estimator):
        catalog, est = estimator
        no_shift = est.predicate_selectivity(
            JoinPredicate.parse("a.v < b.v"), "L", "R"
        )
        shifted = est.predicate_selectivity(
            JoinPredicate.parse("a.v + 500 < b.v"), "L", "R"
        )
        assert shifted < no_shift

    def test_eq_small(self, estimator):
        catalog, est = estimator
        sel = est.predicate_selectivity(JoinPredicate.parse("a.v = b.v"), "L", "R")
        assert 0 < sel < 0.01

    def test_ne_complements_eq(self, estimator):
        catalog, est = estimator
        eq = est.predicate_selectivity(JoinPredicate.parse("a.v = b.v"), "L", "R")
        ne = est.predicate_selectivity(JoinPredicate.parse("a.v != b.v"), "L", "R")
        assert abs((eq + ne) - 1.0) < 1e-9

    def test_condition_selectivity_multiplies(self, estimator):
        catalog, est = estimator
        condition = JoinCondition.parse(1, "a.v < b.v", "a.id >= b.id")
        sel = est.condition_selectivity(condition, {"a": "L", "b": "R"})
        lone = est.predicate_selectivity(JoinPredicate.parse("a.v < b.v"), "L", "R")
        assert sel < lone

    def test_disjoint_ranges_give_zero_eq(self):
        catalog = StatisticsCatalog()
        low = Relation("LOW", Schema.of("v:int"), [(i,) for i in range(100)])
        high = Relation("HIGH", Schema.of("v:int"), [(i + 1000,) for i in range(100)])
        catalog.add_relation(low)
        catalog.add_relation(high)
        est = SelectivityEstimator(catalog)
        assert est.predicate_selectivity(
            JoinPredicate.parse("a.v = b.v"), "LOW", "HIGH"
        ) == 0.0
        # And the range estimate knows LOW < HIGH always holds.
        assert est.predicate_selectivity(
            JoinPredicate.parse("a.v < b.v"), "LOW", "HIGH"
        ) > 0.95
