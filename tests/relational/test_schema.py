"""Tests for repro.relational.schema."""

import pytest

from repro.errors import SchemaError
from repro.relational.schema import DEFAULT_WIDTHS, Field, Schema


class TestField:
    def test_default_width_by_kind(self):
        assert Field("x", "int").byte_width == DEFAULT_WIDTHS["int"]
        assert Field("x", "str").byte_width == DEFAULT_WIDTHS["str"]

    def test_explicit_width_overrides_default(self):
        assert Field("x", "int", width=123).byte_width == 123

    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            Field("not a name", "int")
        with pytest.raises(SchemaError):
            Field("", "int")

    def test_invalid_kind_rejected(self):
        with pytest.raises(SchemaError):
            Field("x", "varchar")

    def test_negative_width_rejected(self):
        with pytest.raises(SchemaError):
            Field("x", "int", width=-1)


class TestSchema:
    def test_of_shorthand(self):
        schema = Schema.of("id:int", "name:str", "flag:bool")
        assert schema.names == ("id", "name", "flag")
        assert schema.field("name").kind == "str"

    def test_of_defaults_to_int(self):
        assert Schema.of("a", "b").field("a").kind == "int"

    def test_row_width_includes_header(self):
        schema = Schema.of("a:int", "b:int")
        assert schema.row_width == 8 + 8 + 8

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of("a:int", "a:int")

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_index_of(self):
        schema = Schema.of("a", "b", "c")
        assert schema.index_of("b") == 1
        with pytest.raises(SchemaError):
            schema.index_of("zz")

    def test_contains(self):
        schema = Schema.of("a", "b")
        assert "a" in schema
        assert "z" not in schema

    def test_project_keeps_order(self):
        schema = Schema.of("a", "b", "c")
        projected = schema.project(["c", "a"])
        assert projected.names == ("c", "a")

    def test_concat_with_prefixes(self):
        left = Schema.of("x", "y")
        right = Schema.of("x", "z")
        merged = left.concat(right, prefix_self="l_", prefix_other="r_")
        assert merged.names == ("l_x", "l_y", "r_x", "r_z")

    def test_equality_and_hash(self):
        assert Schema.of("a", "b") == Schema.of("a", "b")
        assert hash(Schema.of("a")) == hash(Schema.of("a"))
        assert Schema.of("a") != Schema.of("b")

    def test_len(self):
        assert len(Schema.of("a", "b", "c")) == 3
