"""Tests for the SQL-ish query front end."""

import pytest

from repro.errors import QueryError
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.sql import parse_join_query
from repro.utils import make_rng


@pytest.fixture
def tables():
    rng = make_rng("sql-test")
    schema = Schema.of("id:int", "bt:int", "l:int", "bsc:int", "d:int")
    rows = [
        (i, rng.randint(0, 100), rng.randint(1, 50), rng.randint(0, 5),
         rng.randint(1, 10))
        for i in range(20)
    ]
    return {"table": Relation("table", schema, rows)}


class TestParsing:
    def test_paper_q1(self, tables):
        """The paper's Q1, verbatim modulo whitespace."""
        query = parse_join_query(
            "SELECT t3.id FROM table t1, table t2, table t3 WHERE "
            "t1.bt <= t2.bt AND t1.l >= t2.l AND t2.bsc = t3.bsc AND t2.d = t3.d",
            tables,
            name="q1",
        )
        assert query.aliases == ("t1", "t2", "t3")
        assert len(query.conditions) == 2  # grouped per relation pair
        assert query.projection == (("t3", "id"),)

    def test_offsets_parsed(self, tables):
        query = parse_join_query(
            "SELECT t1.id FROM table t1, table t2 WHERE t1.d + 3 > t2.d",
            tables,
        )
        predicate = query.conditions[0].predicates[0]
        assert predicate.left.offset == 3

    def test_ne_and_unequal_synonyms(self, tables):
        for operator in ("!=", "<>"):
            query = parse_join_query(
                f"SELECT t1.id FROM table t1, table t2 WHERE t1.bsc {operator} t2.bsc",
                tables,
            )
            assert query.conditions[0].predicates[0].op.symbol == "!="

    def test_star_projection(self, tables):
        query = parse_join_query(
            "SELECT * FROM table t1, table t2 WHERE t1.bt < t2.bt", tables
        )
        assert query.projection is None

    def test_commas_as_and(self, tables):
        query = parse_join_query(
            "SELECT t1.id FROM table t1, table t2 "
            "WHERE t1.bt <= t2.bt, t1.l >= t2.l",
            tables,
        )
        assert len(query.conditions[0].predicates) == 2

    def test_trailing_semicolon(self, tables):
        query = parse_join_query(
            "SELECT t1.id FROM table t1, table t2 WHERE t1.bt < t2.bt;", tables
        )
        assert query.aliases == ("t1", "t2")


class TestErrors:
    def test_not_a_select(self, tables):
        with pytest.raises(QueryError):
            parse_join_query("DELETE FROM table", tables)

    def test_missing_where(self, tables):
        with pytest.raises(QueryError):
            parse_join_query("SELECT * FROM table t1, table t2", tables)

    def test_unknown_relation(self, tables):
        with pytest.raises(QueryError):
            parse_join_query(
                "SELECT * FROM ghost t1, table t2 WHERE t1.a < t2.b", tables
            )

    def test_duplicate_alias(self, tables):
        with pytest.raises(QueryError):
            parse_join_query(
                "SELECT * FROM table t1, table t1 WHERE t1.bt < t1.bt", tables
            )

    def test_unknown_alias_in_predicate(self, tables):
        with pytest.raises(QueryError):
            parse_join_query(
                "SELECT * FROM table t1, table t2 WHERE t1.bt < zz.bt", tables
            )

    def test_bad_select_item(self, tables):
        with pytest.raises(QueryError):
            parse_join_query(
                "SELECT nope FROM table t1, table t2 WHERE t1.bt < t2.bt",
                tables,
            )

    def test_single_relation_rejected(self, tables):
        with pytest.raises(QueryError):
            parse_join_query("SELECT * FROM table t1 WHERE t1.bt < t1.l", tables)


class TestEndToEnd:
    def test_parsed_query_executes_correctly(self, tables):
        from repro.core.executor import PlanExecutor
        from repro.core.planner import ThetaJoinPlanner
        from repro.joins.reference import join_result_signature, reference_join
        from repro.mapreduce.config import ClusterConfig
        from repro.mapreduce.runtime import SimulatedCluster

        query = parse_join_query(
            "SELECT t1.id, t2.id FROM table t1, table t2, table t3 WHERE "
            "t1.bt <= t2.bt AND t2.bsc = t3.bsc",
            tables,
        )
        config = ClusterConfig()
        plan = ThetaJoinPlanner(config).plan(query)
        outcome = PlanExecutor(SimulatedCluster(config)).execute(plan, query)
        assert join_result_signature(outcome.composites) == join_result_signature(
            reference_join(query)
        )
