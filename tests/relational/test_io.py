"""Tests for CSV/TSV relation I/O."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchemaError
from repro.relational.io import infer_schema, read_relation, write_relation
from repro.relational.relation import Relation
from repro.relational.schema import Schema


def write(tmp_path, text, name="data.csv"):
    path = tmp_path / name
    path.write_text(text, encoding="utf-8")
    return path


class TestInference:
    def test_int_column(self):
        schema = infer_schema(["a"], [["1"], ["2"], ["-3"]])
        assert schema.fields[0].kind == "int"

    def test_float_promotion(self):
        schema = infer_schema(["a"], [["1"], ["2.5"]])
        assert schema.fields[0].kind == "float"

    def test_str_fallback(self):
        schema = infer_schema(["a"], [["1"], ["two"]])
        assert schema.fields[0].kind == "str"

    def test_empty_cells_ignored_for_inference(self):
        schema = infer_schema(["a"], [[""], ["7"]])
        assert schema.fields[0].kind == "int"

    def test_all_empty_column_is_str(self):
        schema = infer_schema(["a"], [[""], [""]])
        assert schema.fields[0].kind == "str"

    def test_empty_header_rejected(self):
        with pytest.raises(SchemaError):
            infer_schema([], [])


class TestRead:
    def test_basic_roundtrip_types(self, tmp_path):
        path = write(tmp_path, "id,score,label\n1,2.5,x\n2,3.0,y\n")
        relation = read_relation(path)
        assert relation.name == "data"
        assert relation.schema.names == ("id", "score", "label")
        assert relation.rows == [(1, 2.5, "x"), (2, 3.0, "y")]

    def test_explicit_schema(self, tmp_path):
        path = write(tmp_path, "id,v\n1,2\n")
        schema = Schema.of("id:int", "v:float")
        relation = read_relation(path, schema=schema)
        assert relation.rows == [(1, 2.0)]

    def test_schema_header_mismatch(self, tmp_path):
        path = write(tmp_path, "id,wrong\n1,2\n")
        with pytest.raises(SchemaError, match="does not match"):
            read_relation(path, schema=Schema.of("id:int", "v:int"))

    def test_ragged_row_rejected(self, tmp_path):
        path = write(tmp_path, "a,b\n1,2\n3\n")
        with pytest.raises(SchemaError, match=":3:"):
            read_relation(path)

    def test_empty_file_rejected(self, tmp_path):
        path = write(tmp_path, "")
        with pytest.raises(SchemaError, match="empty"):
            read_relation(path)

    def test_empty_cells_become_none(self, tmp_path):
        path = write(tmp_path, "a,b\n1,\n,x\n")
        relation = read_relation(path)
        assert relation.rows[0][1] is None
        assert relation.rows[1][0] is None

    def test_tsv(self, tmp_path):
        path = write(tmp_path, "a\tb\n1\t2\n", name="data.tsv")
        relation = read_relation(path, delimiter="\t")
        assert relation.rows == [(1, 2)]


class TestWrite:
    def test_roundtrip(self, tmp_path):
        original = Relation(
            "r", Schema.of("id:int", "v:float", "s:str"),
            [(1, 1.5, "a"), (2, 2.5, "b,with,commas")],
        )
        path = write_relation(original, tmp_path / "out" / "r.csv")
        back = read_relation(path, name="r")
        assert back.rows == original.rows
        assert back.schema.names == original.schema.names

    def test_none_roundtrips_as_empty(self, tmp_path):
        original = Relation("r", Schema.of("a:int", "b:str"), [(1, None)])
        path = write_relation(original, tmp_path / "r.csv")
        back = read_relation(path)
        assert back.rows[0][1] is None


class TestEndToEnd:
    def test_csv_relations_joinable(self, tmp_path):
        """Load two CSV files and run the paper's planner over them."""
        from repro.core.executor import PlanExecutor
        from repro.core.planner import ThetaJoinPlanner
        from repro.joins.reference import reference_join
        from repro.mapreduce.config import ClusterConfig
        from repro.mapreduce.runtime import SimulatedCluster
        from repro.relational.predicates import JoinCondition
        from repro.relational.query import JoinQuery

        left = write(
            tmp_path,
            "id,ts\n" + "".join(f"{i},{i * 3 % 17}\n" for i in range(20)),
            name="left.csv",
        )
        right = write(
            tmp_path,
            "id,ts\n" + "".join(f"{i},{i * 5 % 13}\n" for i in range(20)),
            name="right.csv",
        )
        query = JoinQuery(
            "csv-join",
            {"a": read_relation(left), "b": read_relation(right)},
            [JoinCondition.parse(1, "a.ts < b.ts")],
        )
        config = ClusterConfig().with_units(4)
        plan = ThetaJoinPlanner(config).plan(query)
        outcome = PlanExecutor(SimulatedCluster(config)).execute(plan, query)
        assert outcome.report.output_records == len(reference_join(query))


class TestProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=-10**9, max_value=10**9),
                st.floats(
                    min_value=-1e6, max_value=1e6,
                    allow_nan=False, allow_infinity=False,
                ),
                st.text(
                    alphabet=st.characters(
                        min_codepoint=32, max_codepoint=126,
                        blacklist_characters=',"\r\n',
                    ),
                    max_size=12,
                ),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_write_read_roundtrip(self, rows):
        import tempfile
        from pathlib import Path

        schema = Schema.of("i:int", "f:float", "s:str")
        # Empty strings round-trip as None by design; normalise them.
        rows = [(i, f, s if s else "x") for i, f, s in rows]
        original = Relation("r", schema, rows)
        with tempfile.TemporaryDirectory() as tmp:
            path = write_relation(original, Path(tmp) / "r.csv")
            back = read_relation(path, schema=schema)
        assert back.rows == original.rows
