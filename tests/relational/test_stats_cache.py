"""Tests for the cross-query planning-statistics cache."""


from repro.relational.predicates import JoinCondition
from repro.relational.query import JoinQuery
from repro.relational.relation import Relation
from repro.relational.sampling import SampledJoinEstimator
from repro.relational.schema import Schema
from repro.relational.statistics import StatisticsCatalog
from repro.relational.stats_cache import (
    PlanningCache,
    get_planning_cache,
    relation_fingerprint,
)
from repro.utils import make_rng


def rel(name, rows, seed=0):
    rng = make_rng("stats-cache-test", name, seed)
    return Relation(
        name,
        Schema.of("id:int", "v:int", "d:int"),
        [(i, rng.randint(0, 99), rng.randint(1, 30)) for i in range(rows)],
    )


def query_of(a, b):
    return JoinQuery(
        "q", {"a": a, "b": b}, [JoinCondition.parse(1, "a.v = b.v")]
    )


def estimator_for(query, cache):
    catalog = StatisticsCatalog()
    for relation in query.relations.values():
        if relation.name not in catalog:
            catalog.add_relation(relation, cache=cache)
    return SampledJoinEstimator(query, catalog, cache=cache)


class TestFingerprint:
    def test_identical_content_same_fingerprint(self):
        assert relation_fingerprint(rel("A", 50)) == relation_fingerprint(
            rel("A", 50)
        )

    def test_content_change_changes_fingerprint(self):
        assert relation_fingerprint(rel("A", 50)) != relation_fingerprint(
            rel("A", 50, seed=1)
        )

    def test_name_change_changes_fingerprint(self):
        assert relation_fingerprint(rel("A", 50)) != relation_fingerprint(
            rel("B", 50)
        )

    def test_schema_rename_changes_fingerprint(self):
        # Statistics are keyed by attribute name; identical rows under
        # renamed columns must not share cache entries.
        rows = [(i, i * 2, i % 7) for i in range(50)]
        one = Relation("A", Schema.of("id:int", "v:int", "d:int"), rows)
        other = Relation("A", Schema.of("id:int", "w:int", "d:int"), rows)
        assert relation_fingerprint(one) != relation_fingerprint(other)

    def test_append_invalidates_memo(self):
        relation = rel("A", 50)
        first = relation_fingerprint(relation)
        relation.append((50, 1, 2))
        assert relation_fingerprint(relation) != first


class TestSampleCache:
    def test_hit_on_same_instance(self):
        cache = PlanningCache()
        relation = rel("A", 200)
        s1 = cache.sample(relation, "a", 50)
        s2 = cache.sample(relation, "a", 50)
        assert s1 is s2
        counters = cache.counters()["samples"]
        assert counters == {"hits": 1, "misses": 1, "entries": 1}

    def test_hit_across_instances_with_same_content(self):
        cache = PlanningCache()
        s1 = cache.sample(rel("A", 200), "a", 50)
        s2 = cache.sample(rel("A", 200), "a", 50)
        assert s1 is s2

    def test_miss_on_different_alias_or_size(self):
        cache = PlanningCache()
        relation = rel("A", 200)
        cache.sample(relation, "a", 50)
        cache.sample(relation, "b", 50)
        cache.sample(relation, "a", 60)
        assert cache.counters()["samples"] == {
            "hits": 0,
            "misses": 3,
            "entries": 3,
        }

    def test_sample_matches_uncached_draw(self):
        cache = PlanningCache()
        relation = rel("A", 200)
        cached = cache.sample(relation, "a", 50)
        direct = relation.sample(50, make_rng("join-sample", "A", "a"))
        assert cached.rows == direct.rows


class TestRelationStatsCache:
    def test_hit_and_equivalence(self):
        cache = PlanningCache()
        stats1 = cache.relation_stats(rel("A", 300))
        stats2 = cache.relation_stats(rel("A", 300))
        assert stats1 is stats2
        catalog = StatisticsCatalog()
        uncached = catalog.add_relation(rel("A", 300))
        assert stats1.columns["v"].boundaries == uncached.columns["v"].boundaries

    def test_sample_size_part_of_key(self):
        cache = PlanningCache()
        relation = rel("A", 300)
        cache.relation_stats(relation, sample_size=100)
        cache.relation_stats(relation, sample_size=200)
        assert cache.counters()["stats"]["entries"] == 2


class TestJoinObservationCache:
    def test_second_estimator_hits(self):
        cache = PlanningCache()
        a, b = rel("A", 200), rel("B", 180, seed=1)
        first = estimator_for(query_of(a, b), cache)
        value = first.selectivity(list(first.query.conditions))
        joins_after_first = dict(cache.counters()["joins"])
        assert joins_after_first["misses"] == 1

        # Fresh relations with identical content: the sample join is
        # served from the cache and the estimate is bit-identical.
        second = estimator_for(query_of(rel("A", 200), rel("B", 180, seed=1)), cache)
        assert second.selectivity(list(second.query.conditions)) == value
        joins = cache.counters()["joins"]
        assert joins["hits"] == 1 and joins["misses"] == 1

    def test_matches_uncached_estimator(self):
        a, b = rel("A", 200), rel("B", 180, seed=1)
        shared = estimator_for(query_of(a, b), PlanningCache())
        private = estimator_for(query_of(a, b), PlanningCache())
        conditions = list(shared.query.conditions)
        assert shared.selectivity(conditions) == private.selectivity(conditions)

    def test_different_content_misses(self):
        cache = PlanningCache()
        est1 = estimator_for(query_of(rel("A", 200), rel("B", 180, seed=1)), cache)
        est1.selectivity(list(est1.query.conditions))
        est2 = estimator_for(query_of(rel("A", 200, seed=2), rel("B", 180, seed=1)), cache)
        est2.selectivity(list(est2.query.conditions))
        assert cache.counters()["joins"] == {
            "hits": 0,
            "misses": 2,
            "entries": 2,
        }

    def test_sample_params_part_of_key(self):
        cache = PlanningCache()
        a, b = rel("A", 200), rel("B", 180, seed=1)
        catalog = StatisticsCatalog()
        catalog.add_relation(a, cache=cache)
        catalog.add_relation(b, cache=cache)
        query = query_of(a, b)
        for rows in (50, 100):
            est = SampledJoinEstimator(query, catalog, sample_rows=rows, cache=cache)
            est.selectivity(list(query.conditions))
        assert cache.counters()["joins"]["entries"] == 2


class TestInvalidation:
    def test_invalidate_by_relation_name(self):
        cache = PlanningCache()
        a, b = rel("A", 200), rel("B", 180, seed=1)
        est = estimator_for(query_of(a, b), cache)
        est.selectivity(list(est.query.conditions))
        cache.relation_stats(a)
        assert cache.invalidate("A") > 0
        counters = cache.counters()
        # Everything touching A is gone; B's sample survives.
        assert counters["joins"]["entries"] == 0
        assert all(
            key[0][0] == "B" for key in cache._samples.data
        )

    def test_clear(self):
        cache = PlanningCache()
        est = estimator_for(query_of(rel("A", 200), rel("B", 180, seed=1)), cache)
        est.selectivity(list(est.query.conditions))
        cache.clear()
        assert all(
            t["entries"] == 0 for t in cache.counters().values()
        )

    def test_lru_bound(self):
        cache = PlanningCache(max_entries=4)
        for seed in range(10):
            cache.sample(rel("A", 30, seed=seed), "a", 10)
        assert cache.counters()["samples"]["entries"] == 4


def test_default_cache_is_shared_singleton():
    assert get_planning_cache() is get_planning_cache()
