"""Tests for histograms and closed-form theta selectivity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchemaError
from repro.relational.histogram import (
    Bucket,
    ClosedFormSelectivityEstimator,
    Histogram,
    equality_join_selectivity,
    range_join_selectivity,
)
from repro.relational.predicates import JoinPredicate, ThetaOp
from repro.relational.statistics import (
    SelectivityEstimator,
    StatisticsCatalog,
    compute_column_stats,
)
from repro.workloads.synthetic import uniform_relation
from repro.utils import make_rng


def brute_force(left_values, right_values, op, shift=0.0):
    """Exact match fraction by nested loop."""
    hits = sum(
        1
        for x in left_values
        for y in right_values
        if op.evaluate(x, y + shift)
    )
    return hits / (len(left_values) * len(right_values))


class TestBucket:
    def test_invalid_bounds_rejected(self):
        with pytest.raises(SchemaError):
            Bucket(2.0, 1.0, 0.5)

    def test_negative_mass_rejected(self):
        with pytest.raises(SchemaError):
            Bucket(0.0, 1.0, -0.1)

    def test_atom(self):
        assert Bucket(3.0, 3.0, 1.0).is_atom
        assert not Bucket(3.0, 4.0, 1.0).is_atom

    def test_shift(self):
        bucket = Bucket(1.0, 2.0, 0.5).shifted(10.0)
        assert (bucket.lo, bucket.hi, bucket.mass) == (11.0, 12.0, 0.5)


class TestConstruction:
    def test_masses_normalised(self):
        hist = Histogram([Bucket(0, 1, 2.0), Bucket(1, 2, 2.0)])
        assert sum(b.mass for b in hist.buckets) == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            Histogram([])

    def test_overlapping_buckets_rejected(self):
        with pytest.raises(SchemaError):
            Histogram([Bucket(0, 2, 1.0), Bucket(1, 3, 1.0)])

    def test_equi_width_on_constant_column(self):
        hist = Histogram.equi_width([5.0] * 100, buckets=8)
        assert len(hist.buckets) == 1
        assert hist.buckets[0].is_atom
        assert hist.distinct == 1

    def test_equi_depth_on_constant_column(self):
        hist = Histogram.equi_depth([5.0] * 100, buckets=8)
        assert hist.fraction_below(5.0, inclusive=True) == pytest.approx(1.0)
        assert hist.fraction_below(5.0, inclusive=False) == pytest.approx(0.0)

    def test_from_values_rejects_empty(self):
        with pytest.raises(SchemaError):
            Histogram.equi_width([], buckets=4)
        with pytest.raises(SchemaError):
            Histogram.equi_depth([], buckets=4)

    def test_from_column_stats_roundtrip(self):
        values = list(range(1000))
        stats = compute_column_stats("v", values, buckets=16)
        hist = Histogram.from_column_stats(stats)
        assert hist.min_value == 0
        assert hist.max_value == 999
        assert hist.distinct == 1000


class TestFractionBelow:
    def test_matches_ecdf_uniform(self):
        rng = make_rng("hist-ecdf")
        values = [rng.uniform(0, 100) for _ in range(2000)]
        for hist in (
            Histogram.equi_width(values, buckets=20),
            Histogram.equi_depth(values, buckets=20),
        ):
            for probe in (10.0, 33.0, 50.0, 90.0):
                exact = sum(1 for v in values if v < probe) / len(values)
                assert hist.fraction_below(probe) == pytest.approx(exact, abs=0.08)

    def test_monotone(self):
        values = [1.0, 2.0, 2.0, 3.0, 10.0, 20.0]
        hist = Histogram.equi_depth(values, buckets=3)
        probes = [0.0, 1.0, 2.0, 5.0, 15.0, 25.0]
        fractions = [hist.fraction_below(p) for p in probes]
        assert fractions == sorted(fractions)

    def test_bounds(self):
        hist = Histogram.equi_width([1.0, 2.0, 3.0], buckets=2)
        assert hist.fraction_below(0.0) == 0.0
        assert hist.fraction_below(100.0) == 1.0


class TestProbLess:
    def test_disjoint_intervals(self):
        x = Bucket(0, 1, 1.0)
        y = Bucket(2, 3, 1.0)
        assert range_join_selectivity(
            Histogram([x]), Histogram([y]), ThetaOp.LT
        ) == pytest.approx(1.0)
        assert range_join_selectivity(
            Histogram([y]), Histogram([x]), ThetaOp.LT
        ) == pytest.approx(0.0)

    def test_identical_intervals_half(self):
        """P[X < Y] = 1/2 for iid uniforms."""
        x = Histogram([Bucket(0, 10, 1.0)])
        assert range_join_selectivity(x, x, ThetaOp.LT) == pytest.approx(0.5)
        assert range_join_selectivity(x, x, ThetaOp.GT) == pytest.approx(0.5)

    def test_atoms_strict_vs_nonstrict(self):
        atom = Histogram([Bucket(5, 5, 1.0)])
        assert range_join_selectivity(atom, atom, ThetaOp.LT) == 0.0
        assert range_join_selectivity(atom, atom, ThetaOp.LE) == 1.0
        assert range_join_selectivity(atom, atom, ThetaOp.GE) == 1.0
        assert range_join_selectivity(atom, atom, ThetaOp.GT) == 0.0

    def test_atom_against_interval(self):
        atom = Histogram([Bucket(5, 5, 1.0)])
        interval = Histogram([Bucket(0, 10, 1.0)])
        assert range_join_selectivity(atom, interval, ThetaOp.LT) == pytest.approx(0.5)
        assert range_join_selectivity(interval, atom, ThetaOp.LT) == pytest.approx(0.5)

    def test_shift_moves_probability(self):
        x = Histogram([Bucket(0, 10, 1.0)])
        no_shift = range_join_selectivity(x, x, ThetaOp.LT, shift=0.0)
        up = range_join_selectivity(x, x, ThetaOp.LT, shift=5.0)
        down = range_join_selectivity(x, x, ThetaOp.LT, shift=-5.0)
        assert down < no_shift < up


class TestEquality:
    def test_uniform_distinct(self):
        """Two aligned uniform columns with d distinct values: sel = 1/d."""
        values = [float(v) for v in range(100)]
        hist = Histogram.equi_depth(values, buckets=10)
        sel = equality_join_selectivity(hist, hist)
        assert sel == pytest.approx(0.01, rel=0.35)

    def test_disjoint_ranges_zero(self):
        left = Histogram([Bucket(0, 1, 1.0)], distinct=10)
        right = Histogram([Bucket(5, 6, 1.0)], distinct=10)
        assert equality_join_selectivity(left, right) == 0.0

    def test_matching_atoms(self):
        atom = Histogram([Bucket(7, 7, 1.0)], distinct=1)
        assert equality_join_selectivity(atom, atom) == pytest.approx(1.0)

    def test_ne_is_complement(self):
        values = [float(v) for v in range(50)]
        hist = Histogram.equi_depth(values, buckets=8)
        eq = range_join_selectivity(hist, hist, ThetaOp.EQ)
        ne = range_join_selectivity(hist, hist, ThetaOp.NE)
        assert eq + ne == pytest.approx(1.0)


class TestAgainstBruteForce:
    @pytest.mark.parametrize("op", [ThetaOp.LT, ThetaOp.LE, ThetaOp.GT, ThetaOp.GE])
    def test_uniform_data(self, op):
        rng = make_rng("hist-brute", op.value)
        left = [rng.uniform(0, 100) for _ in range(400)]
        right = [rng.uniform(20, 140) for _ in range(400)]
        exact = brute_force(left, right, op)
        est = range_join_selectivity(
            Histogram.equi_depth(left, 16), Histogram.equi_depth(right, 16), op
        )
        assert est == pytest.approx(exact, abs=0.05)

    @pytest.mark.parametrize("shift", [-30.0, 0.0, 30.0])
    def test_shifted_window(self, shift):
        rng = make_rng("hist-brute-shift", shift)
        left = [rng.uniform(0, 100) for _ in range(300)]
        right = [rng.uniform(0, 100) for _ in range(300)]
        exact = brute_force(left, right, ThetaOp.LT, shift=shift)
        est = range_join_selectivity(
            Histogram.equi_depth(left, 16),
            Histogram.equi_depth(right, 16),
            ThetaOp.LT,
            shift=shift,
        )
        assert est == pytest.approx(exact, abs=0.05)

    def test_skewed_data(self):
        rng = make_rng("hist-brute-skew")
        left = [rng.expovariate(0.05) for _ in range(500)]
        right = [rng.expovariate(0.02) for _ in range(500)]
        exact = brute_force(left, right, ThetaOp.LT)
        est = range_join_selectivity(
            Histogram.equi_depth(left, 24), Histogram.equi_depth(right, 24),
            ThetaOp.LT,
        )
        assert est == pytest.approx(exact, abs=0.06)


class TestClosedFormEstimator:
    def make_catalog(self):
        catalog = StatisticsCatalog()
        catalog.add_relation(uniform_relation("L", 1500, value_range=1000, seed=1))
        catalog.add_relation(uniform_relation("R", 1500, value_range=1000, seed=2))
        return catalog

    def test_range_close_to_truth(self):
        catalog = self.make_catalog()
        estimator = ClosedFormSelectivityEstimator(catalog)
        predicate = JoinPredicate.parse("l.v0 < r.v0")
        sel = estimator.predicate_selectivity(predicate, "L", "R")
        assert sel == pytest.approx(0.5, abs=0.05)

    def test_never_worse_than_midpoint_on_uniform(self):
        catalog = self.make_catalog()
        closed = ClosedFormSelectivityEstimator(catalog)
        stock = SelectivityEstimator(catalog)
        predicate = JoinPredicate.parse("l.v0 <= r.v0 + 100")
        truth = 0.5 + 0.1 - 0.1 * 0.1 / 2  # P[u <= v + 0.1R] for uniforms
        closed_err = abs(closed.predicate_selectivity(predicate, "L", "R") - truth)
        stock_err = abs(stock.predicate_selectivity(predicate, "L", "R") - truth)
        assert closed_err <= stock_err + 0.02

    def test_equality_delegates_to_parent(self):
        catalog = self.make_catalog()
        closed = ClosedFormSelectivityEstimator(catalog)
        stock = SelectivityEstimator(catalog)
        predicate = JoinPredicate.parse("l.v0 = r.v0")
        assert closed.predicate_selectivity(
            predicate, "L", "R"
        ) == stock.predicate_selectivity(predicate, "L", "R")

    def test_histogram_cache_reused(self):
        catalog = self.make_catalog()
        estimator = ClosedFormSelectivityEstimator(catalog)
        predicate = JoinPredicate.parse("l.v0 < r.v0")
        estimator.predicate_selectivity(predicate, "L", "R")
        first = dict(estimator._histograms)
        estimator.predicate_selectivity(predicate, "L", "R")
        assert estimator._histograms == first


# ---------------------------------------------------------------------------
# Property-based
# ---------------------------------------------------------------------------

values_strategy = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=2,
    max_size=200,
)


class TestProperties:
    @given(values_strategy, st.integers(min_value=1, max_value=30))
    @settings(max_examples=60, deadline=None)
    def test_equi_depth_mass_sums_to_one(self, values, buckets):
        hist = Histogram.equi_depth(values, buckets=buckets)
        assert sum(b.mass for b in hist.buckets) == pytest.approx(1.0)

    @given(values_strategy, st.integers(min_value=1, max_value=30))
    @settings(max_examples=60, deadline=None)
    def test_equi_width_mass_sums_to_one(self, values, buckets):
        hist = Histogram.equi_width(values, buckets=buckets)
        assert sum(b.mass for b in hist.buckets) == pytest.approx(1.0)

    @given(values_strategy)
    @settings(max_examples=40, deadline=None)
    def test_fraction_below_is_monotone_cdf(self, values):
        hist = Histogram.equi_depth(values, buckets=10)
        lo, hi = hist.min_value, hist.max_value
        probes = sorted([lo - 1, lo, (lo + hi) / 2, hi, hi + 1])
        fractions = [hist.fraction_below(p) for p in probes]
        assert fractions == sorted(fractions)
        assert 0.0 <= min(fractions) and max(fractions) <= 1.0

    @given(values_strategy, values_strategy)
    @settings(max_examples=40, deadline=None)
    def test_lt_and_ge_complement(self, left_values, right_values):
        left = Histogram.equi_depth(left_values, buckets=8)
        right = Histogram.equi_depth(right_values, buckets=8)
        lt = range_join_selectivity(left, right, ThetaOp.LT)
        ge = range_join_selectivity(left, right, ThetaOp.GE)
        assert lt + ge == pytest.approx(1.0, abs=1e-9)

    @given(values_strategy, values_strategy)
    @settings(max_examples=40, deadline=None)
    def test_swapping_sides_mirrors_operator(self, left_values, right_values):
        left = Histogram.equi_depth(left_values, buckets=8)
        right = Histogram.equi_depth(right_values, buckets=8)
        assert range_join_selectivity(
            left, right, ThetaOp.LT
        ) == pytest.approx(
            range_join_selectivity(right, left, ThetaOp.GT), abs=1e-9
        )

    @given(values_strategy)
    @settings(max_examples=40, deadline=None)
    def test_selectivities_in_unit_interval(self, values):
        hist = Histogram.equi_depth(values, buckets=8)
        for op in ThetaOp:
            sel = range_join_selectivity(hist, hist, op)
            assert 0.0 <= sel <= 1.0
