"""Property-based tests for theta-predicate algebra."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.predicates import (
    AttrRef,
    JoinCondition,
    JoinPredicate,
    ThetaOp,
)

ops = st.sampled_from(list(ThetaOp))
values = st.integers(min_value=-1000, max_value=1000)
offsets = st.integers(min_value=-50, max_value=50)


@st.composite
def predicates(draw):
    return JoinPredicate(
        AttrRef("l", "x", offset=float(draw(offsets))),
        draw(ops),
        AttrRef("r", "y", offset=float(draw(offsets))),
    )


class TestOperatorAlgebra:
    @given(ops)
    def test_swapped_is_involution(self, op):
        assert op.swapped().swapped() is op

    @given(ops, values, values)
    def test_swapped_semantics(self, op, a, b):
        """a op b  <=>  b op.swapped() a."""
        assert op.evaluate(a, b) == op.swapped().evaluate(b, a)

    @given(ops)
    def test_symbol_round_trip(self, op):
        assert ThetaOp.from_symbol(op.symbol) is op

    @given(values, values)
    def test_exactly_one_of_lt_eq_gt(self, a, b):
        holds = [
            op for op in (ThetaOp.LT, ThetaOp.EQ, ThetaOp.GT) if op.evaluate(a, b)
        ]
        assert len(holds) == 1

    @given(ops, values, values)
    def test_le_ge_consistent_with_strict(self, op, a, b):
        assert ThetaOp.LE.evaluate(a, b) == (
            ThetaOp.LT.evaluate(a, b) or ThetaOp.EQ.evaluate(a, b)
        )
        assert ThetaOp.GE.evaluate(a, b) == (
            ThetaOp.GT.evaluate(a, b) or ThetaOp.EQ.evaluate(a, b)
        )
        assert ThetaOp.NE.evaluate(a, b) == (not ThetaOp.EQ.evaluate(a, b))


class TestPredicateAlgebra:
    @given(predicates(), values, values)
    @settings(max_examples=100, deadline=None)
    def test_oriented_preserves_semantics(self, predicate, lv, rv):
        """Re-orienting a predicate onto its right alias flips the sides
        without changing its truth value on any assignment."""
        flipped = predicate.oriented("r")
        assert flipped.left.alias == "r"
        # Original: evaluate(lv, rv); flipped reads (rv, lv).
        assert predicate.evaluate_values(lv, rv) == flipped.evaluate_values(rv, lv)

    @given(predicates())
    @settings(max_examples=60, deadline=None)
    def test_oriented_to_own_side_is_identity(self, predicate):
        assert predicate.oriented("l") is predicate

    @given(predicates())
    @settings(max_examples=60, deadline=None)
    def test_parse_round_trip(self, predicate):
        reparsed = JoinPredicate.parse(str(predicate))
        assert reparsed.op is predicate.op
        assert reparsed.left.alias == predicate.left.alias
        assert reparsed.right.alias == predicate.right.alias
        assert reparsed.left.offset == predicate.left.offset
        assert reparsed.right.offset == predicate.right.offset

    @given(predicates(), values, values)
    @settings(max_examples=80, deadline=None)
    def test_offsets_shift_the_comparison(self, predicate, lv, rv):
        """Evaluating with offsets equals evaluating shifted raw values
        with a zero-offset predicate."""
        bare = JoinPredicate(
            AttrRef("l", "x"), predicate.op, AttrRef("r", "y")
        )
        assert predicate.evaluate_values(lv, rv) == bare.evaluate_values(
            lv + predicate.left.offset, rv + predicate.right.offset
        )


class TestConditionAlgebra:
    @given(
        st.lists(predicates(), min_size=1, max_size=4),
        values,
        values,
    )
    @settings(max_examples=80, deadline=None)
    def test_condition_is_conjunction(self, preds, lv, rv):
        from repro.relational.schema import Schema

        condition = JoinCondition(1, preds)
        schema = Schema.of("x:int", "y:int")
        rows = {"l": (lv, lv), "r": (rv, rv)}
        schemas = {"l": schema, "r": schema}
        expected = all(
            p.evaluate_values(
                rows["l"][0 if p.left.attr == "x" else 1],
                rows["r"][0 if p.right.attr == "x" else 1],
            )
            for p in preds
        )
        assert condition.evaluate(rows, schemas) == expected

    @given(st.lists(predicates(), min_size=1, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_alias_pair_recorded_sorted(self, preds):
        condition = JoinCondition(3, preds)
        assert condition.aliases == ("l", "r")
        assert condition.touches("l") and condition.touches("r")
        assert condition.other_alias("l") == "r"
