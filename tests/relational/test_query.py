"""Tests for JoinQuery validation and accessors."""

import pytest

from repro.errors import QueryError
from repro.relational.predicates import JoinCondition
from repro.relational.query import JoinQuery
from repro.relational.relation import Relation
from repro.relational.schema import Schema


def rel(name: str, rows: int = 4) -> Relation:
    schema = Schema.of("id:int", "v:int")
    return Relation(name, schema, [(i, i) for i in range(rows)])


def simple_query() -> JoinQuery:
    return JoinQuery(
        "q",
        {"a": rel("A"), "b": rel("B"), "c": rel("C")},
        [
            JoinCondition.parse(1, "a.v < b.v"),
            JoinCondition.parse(2, "b.v = c.v"),
        ],
    )


class TestValidation:
    def test_valid_query_builds(self):
        query = simple_query()
        assert query.aliases == ("a", "b", "c")
        assert query.condition_ids == (1, 2)

    def test_duplicate_condition_ids_rejected(self):
        with pytest.raises(QueryError):
            JoinQuery(
                "q",
                {"a": rel("A"), "b": rel("B")},
                [
                    JoinCondition.parse(1, "a.v < b.v"),
                    JoinCondition.parse(1, "a.v > b.v"),
                ],
            )

    def test_unknown_alias_rejected(self):
        with pytest.raises(QueryError):
            JoinQuery(
                "q",
                {"a": rel("A"), "b": rel("B")},
                [JoinCondition.parse(1, "a.v < z.v")],
            )

    def test_unknown_attribute_rejected(self):
        with pytest.raises(QueryError):
            JoinQuery(
                "q",
                {"a": rel("A"), "b": rel("B")},
                [JoinCondition.parse(1, "a.nope < b.v")],
            )

    def test_disconnected_graph_rejected(self):
        with pytest.raises(QueryError):
            JoinQuery(
                "q",
                {"a": rel("A"), "b": rel("B"), "c": rel("C"), "d": rel("D")},
                [
                    JoinCondition.parse(1, "a.v < b.v"),
                    JoinCondition.parse(2, "c.v < d.v"),
                ],
            )

    def test_needs_two_relations(self):
        with pytest.raises(QueryError):
            JoinQuery("q", {"a": rel("A")}, [])

    def test_projection_validated(self):
        with pytest.raises(QueryError):
            JoinQuery(
                "q",
                {"a": rel("A"), "b": rel("B")},
                [JoinCondition.parse(1, "a.v < b.v")],
                projection=[("a", "nope")],
            )


class TestAccessors:
    def test_condition_lookup(self):
        query = simple_query()
        assert query.condition(2).aliases == ("b", "c")
        with pytest.raises(QueryError):
            query.condition(99)

    def test_conditions_between(self):
        query = simple_query()
        assert len(query.conditions_between("a", "b")) == 1
        assert query.conditions_between("a", "c") == []

    def test_conditions_among(self):
        query = simple_query()
        assert len(query.conditions_among(["a", "b", "c"])) == 2
        assert len(query.conditions_among(["a", "b"])) == 1
        assert query.conditions_among(["a"]) == []

    def test_subquery(self):
        query = simple_query()
        sub = query.subquery([2])
        assert set(sub.relations) == {"b", "c"}
        assert sub.condition_ids == (2,)

    def test_output_schema_prefixes(self):
        query = simple_query()
        names = query.output_schema().names
        assert "a_id" in names and "c_v" in names

    def test_total_input_bytes_counts_distinct_relations(self):
        shared = rel("S")
        query = JoinQuery(
            "q",
            {"a": shared, "b": shared.renamed("S")},
            [JoinCondition.parse(1, "a.v < b.v")],
        )
        # Self-join: the underlying relation is stored once.
        assert query.total_input_bytes() == shared.size_bytes
