"""Tests for repro.relational.relation."""

import pytest

from repro.errors import SchemaError
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.utils import make_rng


@pytest.fixture
def relation() -> Relation:
    schema = Schema.of("id:int", "v:int")
    return Relation("R", schema, [(i, i * 10) for i in range(10)])


class TestConstruction:
    def test_rows_are_tuples(self, relation):
        assert all(isinstance(r, tuple) for r in relation)

    def test_arity_mismatch_rejected(self):
        schema = Schema.of("id:int", "v:int")
        with pytest.raises(SchemaError):
            Relation("R", schema, [(1, 2, 3)])

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Relation("", Schema.of("a"))

    def test_append_and_extend(self, relation):
        relation.append((10, 100))
        relation.extend([(11, 110), (12, 120)])
        assert len(relation) == 13

    def test_size_bytes(self, relation):
        assert relation.size_bytes == 10 * relation.schema.row_width


class TestAccessors:
    def test_column(self, relation):
        assert relation.column("v") == [i * 10 for i in range(10)]

    def test_value(self, relation):
        assert relation.value(relation[3], "v") == 30

    def test_cardinality(self, relation):
        assert relation.cardinality == 10

    def test_renamed_shares_rows(self, relation):
        clone = relation.renamed("S")
        relation.append((99, 990))
        assert len(clone) == 11
        assert clone.name == "S"


class TestOperators:
    def test_select(self, relation):
        out = relation.select(lambda r: r[1] >= 50)
        assert len(out) == 5

    def test_project(self, relation):
        out = relation.project(["v"])
        assert out.schema.names == ("v",)
        assert out[0] == (0,)

    def test_sorted_by(self, relation):
        out = relation.sorted_by("v", reverse=True)
        assert out[0][1] == 90

    def test_distinct(self):
        schema = Schema.of("a")
        rel = Relation("R", schema, [(1,), (1,), (2,)])
        assert len(rel.distinct()) == 2

    def test_sample_bounded_and_deterministic(self, relation):
        s1 = relation.sample(4, make_rng("s", 1))
        s2 = relation.sample(4, make_rng("s", 1))
        assert len(s1) == 4
        assert s1.rows == s2.rows

    def test_sample_larger_than_relation(self, relation):
        assert len(relation.sample(100)) == 10

    def test_head(self, relation):
        assert relation.head(3).rows == relation.rows[:3]
