"""Unit tests for the execution-backend layer.

Backends must return ``[fn(0), ..., fn(count-1)]`` in index order, the
process backend's registry handshake must ship closures over
*unpicklable* compiled state, and backend selection must follow the
consolidated :class:`ExecutionSettings` (including the nesting guards
that keep pool tasks from fanning out onto their own pool).
"""

import pytest

from repro.mapreduce import backend as backend_mod
from repro.mapreduce.backend import (
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    close_backends,
    get_backend,
)
from repro.mapreduce.config import ExecutionSettings, execution_settings


@pytest.fixture(autouse=True)
def _clean_pools():
    yield
    close_backends()


class TestSettings:
    def test_defaults(self, monkeypatch):
        for name in (
            "REPRO_EXEC_BACKEND",
            "REPRO_EXEC_WORKERS",
            "REPRO_WORKERS_ADDRS",
            "REPRO_WORKER_HEARTBEAT_S",
            "REPRO_TASK_RETRIES",
            "REPRO_WORKER_CONNECT_TIMEOUT_S",
            "REPRO_MAP_SHARDS",
            "REPRO_NP_MIN_PROBE",
            "REPRO_NP_MIN_PAIRS",
            "REPRO_PLAN_DISK_CACHE",
            "REPRO_CACHE_DIR",
        ):
            monkeypatch.delenv(name, raising=False)
        settings = execution_settings()
        assert settings.backend == "serial"
        assert settings.map_shards == 1
        assert settings.workers_addrs == ()
        assert settings.worker_heartbeat_s == 2.0
        assert settings.task_retries == 2
        assert settings.worker_connect_timeout_s == 1.0
        assert settings.np_min_probe == 128
        assert settings.np_min_pairs == 256
        assert not settings.plan_disk_cache
        assert not settings.parallel

    def test_explicit_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_BACKEND", "process")
        monkeypatch.setenv("REPRO_EXEC_WORKERS", "3")
        settings = execution_settings()
        assert settings.backend == "process"
        assert settings.effective_workers == 3
        assert settings.parallel

    def test_legacy_map_shards_selects_threads(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXEC_BACKEND", raising=False)
        monkeypatch.delenv("REPRO_EXEC_WORKERS", raising=False)
        monkeypatch.delenv("REPRO_WORKERS_ADDRS", raising=False)
        monkeypatch.setenv("REPRO_MAP_SHARDS", "4")
        settings = execution_settings()
        assert settings.backend == "thread"
        assert settings.effective_workers == 4
        assert settings.chunk_fanout == 4

    def test_garbage_values_fall_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_BACKEND", "quantum")
        monkeypatch.setenv("REPRO_EXEC_WORKERS", "lots")
        monkeypatch.setenv("REPRO_MAP_SHARDS", "-3")
        monkeypatch.delenv("REPRO_WORKERS_ADDRS", raising=False)
        settings = execution_settings()
        assert settings.backend == "serial"
        assert settings.workers == 0
        assert settings.map_shards == 1

    def test_np_gates_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NP_MIN_PROBE", "9")
        monkeypatch.setenv("REPRO_NP_MIN_PAIRS", "17")
        settings = execution_settings()
        assert (settings.np_min_probe, settings.np_min_pairs) == (9, 17)

    def test_refresh_np_gates_updates_jobs_module(self, monkeypatch):
        from repro.joins import jobs

        monkeypatch.setenv("REPRO_NP_MIN_PROBE", "11")
        monkeypatch.setenv("REPRO_NP_MIN_PAIRS", "13")
        jobs.refresh_np_gates()
        try:
            assert (jobs._NP_MIN_PROBE, jobs._NP_MIN_PAIRS) == (11, 13)
        finally:
            monkeypatch.delenv("REPRO_NP_MIN_PROBE")
            monkeypatch.delenv("REPRO_NP_MIN_PAIRS")
            jobs.refresh_np_gates()
        assert (jobs._NP_MIN_PROBE, jobs._NP_MIN_PAIRS) == (128, 256)


class TestDistributedSettings:
    """Parsing edge cases of the distributed backend's environment knobs."""

    def test_addrs_select_distributed_without_backend(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXEC_BACKEND", raising=False)
        monkeypatch.setenv("REPRO_WORKERS_ADDRS", "127.0.0.1:7601,127.0.0.1:7602")
        settings = execution_settings()
        assert settings.backend == "distributed"
        assert settings.workers_addrs == ("127.0.0.1:7601", "127.0.0.1:7602")
        assert settings.effective_workers == 2
        assert settings.parallel

    def test_malformed_entries_are_skipped(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_WORKERS_ADDRS",
            "nonsense, host:, :123, host:notaport, 10.0.0.1:70000,"
            "  127.0.0.1:7601 , 127.0.0.1:7601, h:0; h2:8080",
        )
        settings = execution_settings()
        # Only the well-formed, in-range, deduplicated survivors remain.
        assert settings.workers_addrs == ("127.0.0.1:7601", "h2:8080")

    def test_dropped_entries_are_named_once_on_stderr(self, monkeypatch, capsys):
        """A fleet typo must be diagnosable: every malformed entry is
        named in a stderr warning exactly once per process, not silently
        skipped and not repeated on every settings re-read."""
        from repro.mapreduce import config

        monkeypatch.setattr(config, "_warned_addr_entries", set())
        monkeypatch.setenv(
            "REPRO_WORKERS_ADDRS", "bad-entry:notaport,127.0.0.1:7601"
        )
        settings = execution_settings()
        assert settings.workers_addrs == ("127.0.0.1:7601",)
        err = capsys.readouterr().err
        assert "bad-entry:notaport" in err
        assert "REPRO_WORKERS_ADDRS" in err
        # Settings are re-read per phase; the warning must not repeat.
        execution_settings()
        assert "bad-entry:notaport" not in capsys.readouterr().err

    def test_all_malformed_degrades_to_serial_selection(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXEC_BACKEND", raising=False)
        monkeypatch.setenv("REPRO_WORKERS_ADDRS", "not-an-addr,also:bad:extra:")
        settings = execution_settings()
        assert settings.workers_addrs == ()
        assert settings.backend == "serial"
        assert not settings.parallel
        assert get_backend(settings).name == "serial"

    def test_distributed_with_zero_workers_is_not_parallel(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_BACKEND", "distributed")
        monkeypatch.delenv("REPRO_WORKERS_ADDRS", raising=False)
        settings = execution_settings()
        assert settings.backend == "distributed"
        assert settings.workers_addrs == ()
        assert not settings.parallel
        assert get_backend(settings).name == "serial"

    def test_single_worker_is_still_parallel(self, monkeypatch):
        """One remote daemon is worth dispatching to — unlike a 1-thread
        pool, it offloads the coordinator."""
        monkeypatch.setenv("REPRO_WORKERS_ADDRS", "127.0.0.1:7601")
        settings = execution_settings()
        assert settings.effective_workers == 1
        assert settings.parallel

    def test_explicit_backend_wins_over_addrs(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_BACKEND", "thread")
        monkeypatch.setenv("REPRO_EXEC_WORKERS", "3")
        monkeypatch.setenv("REPRO_WORKERS_ADDRS", "127.0.0.1:7601")
        settings = execution_settings()
        assert settings.backend == "thread"
        assert settings.effective_workers == 3
        # The addrs still parse (a later distributed run can use them).
        assert settings.workers_addrs == ("127.0.0.1:7601",)

    def test_legacy_map_shards_conflict_resolves_to_distributed(self, monkeypatch):
        """REPRO_MAP_SHARDS>1 (PR 2) used to imply the thread backend;
        configured worker daemons outrank it, and the shard count then
        only shapes the chunk fan-out."""
        monkeypatch.delenv("REPRO_EXEC_BACKEND", raising=False)
        monkeypatch.setenv("REPRO_MAP_SHARDS", "4")
        monkeypatch.setenv(
            "REPRO_WORKERS_ADDRS", "127.0.0.1:7601,127.0.0.1:7602"
        )
        settings = execution_settings()
        assert settings.backend == "distributed"
        assert settings.effective_workers == 2
        assert settings.map_shards == 4
        assert settings.chunk_fanout == 4  # max(workers, legacy shards)

    def test_heartbeat_and_retry_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKER_HEARTBEAT_S", "0.5")
        monkeypatch.setenv("REPRO_TASK_RETRIES", "7")
        monkeypatch.setenv("REPRO_WORKER_CONNECT_TIMEOUT_S", "0.25")
        settings = execution_settings()
        assert settings.worker_heartbeat_s == 0.5
        assert settings.task_retries == 7
        assert settings.worker_connect_timeout_s == 0.25

    def test_garbage_knobs_fall_back_to_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKER_HEARTBEAT_S", "soon")
        monkeypatch.setenv("REPRO_TASK_RETRIES", "-5")
        monkeypatch.setenv("REPRO_WORKER_CONNECT_TIMEOUT_S", "")
        settings = execution_settings()
        assert settings.worker_heartbeat_s == 2.0
        assert settings.task_retries == 0  # clamped at the minimum
        assert settings.worker_connect_timeout_s == 1.0

    def test_heartbeat_clamped_above_zero(self, monkeypatch):
        """A zero/negative heartbeat would spin or divide the liveness
        window to nothing; the floor keeps the ping loop sane."""
        monkeypatch.setenv("REPRO_WORKER_HEARTBEAT_S", "0")
        assert execution_settings().worker_heartbeat_s == 0.05

    def test_changed_addrs_reconfigure_the_live_backend(self, monkeypatch):
        """A fleet change re-points the ONE live coordinator (drain +
        dial) instead of building a cold twin — the elasticity contract
        ``repro serve`` relies on."""
        monkeypatch.setenv("REPRO_EXEC_BACKEND", "distributed")
        monkeypatch.setenv("REPRO_WORKERS_ADDRS", "127.0.0.1:7601")
        first = get_backend()
        assert first.name == "distributed"
        assert get_backend() is first
        monkeypatch.setenv("REPRO_WORKERS_ADDRS", "127.0.0.1:7602")
        second = get_backend()
        assert second is first  # same coordinator, re-pointed in place
        assert second.addrs == ("127.0.0.1:7602",)

    def test_timing_knobs_still_key_distinct_instances(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_BACKEND", "distributed")
        monkeypatch.setenv("REPRO_WORKERS_ADDRS", "127.0.0.1:7601")
        first = get_backend()
        monkeypatch.setenv("REPRO_WORKER_HEARTBEAT_S", "0.31")
        second = get_backend()
        assert second is not first  # different liveness window, new pool


class TestOrdering:
    @pytest.mark.parametrize(
        "make",
        [SerialBackend, lambda: ThreadBackend(3), lambda: ProcessBackend(2)],
        ids=["serial", "thread", "process"],
    )
    def test_results_in_index_order(self, make):
        backend = make()
        try:
            assert backend.run_tasks(lambda i: i * i, 13) == [
                i * i for i in range(13)
            ]
        finally:
            backend.close()

    def test_process_ships_unpicklable_closures(self):
        """The registry handshake must work for callables pickle rejects
        (compiled join closures are exactly this shape)."""
        import pickle

        captured = {"table": [10, 20, 30, 40], "offset": 7}
        fn = lambda i: captured["table"][i] + captured["offset"]  # noqa: E731
        with pytest.raises(Exception):
            pickle.dumps(fn)
        backend = ProcessBackend(2)
        try:
            assert backend.run_tasks(fn, 4) == [17, 27, 37, 47]
        finally:
            backend.close()

    def test_process_propagates_task_errors(self):
        backend = ProcessBackend(2)

        def boom(index):
            if index == 2:
                raise ValueError("task 2 exploded")
            return index

        try:
            with pytest.raises(ValueError, match="task 2 exploded"):
                backend.run_tasks(boom, 4)
        finally:
            backend.close()

    def test_process_pool_persists_until_registry_moves(self):
        backend = ProcessBackend(2)
        try:
            backend.run_tasks(lambda i: i, 3)
            first_pool = backend._pool
            assert first_pool is not None
            # No registration since the last fork: the pool is reused.
            assert backend._ensure_pool() is first_pool
            # A new registration staled the snapshot: the pool recycles.
            backend_mod._register_task_fn(lambda i: i)
            assert backend._ensure_pool() is not first_pool
        finally:
            backend.close()

    def test_single_task_runs_inline(self):
        backend = ProcessBackend(2)
        try:
            side_effect = []
            backend.run_tasks(lambda i: side_effect.append(i), 1)
            assert side_effect == [0]  # parent-side: no fork for count<=1
            assert backend._pool is None
        finally:
            backend.close()


class TestSelectionAndNesting:
    def test_serial_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXEC_BACKEND", raising=False)
        monkeypatch.delenv("REPRO_MAP_SHARDS", raising=False)
        monkeypatch.delenv("REPRO_WORKERS_ADDRS", raising=False)
        assert get_backend().name == "serial"

    def test_env_selects_process(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_BACKEND", "process")
        monkeypatch.setenv("REPRO_EXEC_WORKERS", "2")
        assert get_backend().name == "process"

    def test_backend_instances_are_shared(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_BACKEND", "thread")
        monkeypatch.setenv("REPRO_EXEC_WORKERS", "2")
        assert get_backend() is get_backend()

    def test_workers_one_is_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_BACKEND", "process")
        monkeypatch.setenv("REPRO_EXEC_WORKERS", "1")
        assert get_backend().name == "serial"

    def test_thread_task_nesting_degrades_to_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_BACKEND", "thread")
        monkeypatch.setenv("REPRO_EXEC_WORKERS", "2")
        outer = get_backend()
        assert outer.name == "thread"
        inner_names = outer.run_tasks(lambda i: get_backend().name, 4)
        assert inner_names == ["serial"] * 4

    def test_process_worker_nesting_degrades_to_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_BACKEND", "process")
        monkeypatch.setenv("REPRO_EXEC_WORKERS", "2")
        outer = get_backend()
        assert outer.name == "process"
        inner_names = outer.run_tasks(lambda i: get_backend().name, 4)
        assert inner_names == ["serial"] * 4

    def test_settings_object_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_BACKEND", "process")
        explicit = ExecutionSettings(backend="serial")
        assert get_backend(explicit).name == "serial"


class TestCloseSafety:
    """close()/close_backends() are idempotent and race-safe.

    The serve coordinator closes backends on drain *and* at interpreter
    exit, sometimes from two threads; a second close must be a no-op and
    a close racing an in-flight wave must not corrupt the batch."""

    def test_thread_backend_close_twice(self):
        backend = ThreadBackend(2)
        assert backend.run_tasks(lambda i: i + 1, 4) == [1, 2, 3, 4]
        backend.close()
        backend.close()
        # A closed backend lazily rebuilds its pool on the next wave.
        assert backend.run_tasks(lambda i: i * 2, 3) == [0, 2, 4]
        backend.close()

    def test_process_backend_close_twice(self):
        backend = ProcessBackend(2)
        assert backend.run_tasks(lambda i: i + 1, 4) == [1, 2, 3, 4]
        backend.close()
        backend.close()
        assert backend.run_tasks(lambda i: i * 2, 3) == [0, 2, 4]
        backend.close()

    def test_close_backends_twice(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_BACKEND", "thread")
        monkeypatch.setenv("REPRO_EXEC_WORKERS", "2")
        get_backend().run_tasks(lambda i: i, 2)
        close_backends()
        close_backends()  # second sweep sees an empty registry

    def test_concurrent_close_calls_never_double_join(self):
        import threading

        backend = ThreadBackend(4)
        backend.run_tasks(lambda i: i, 4)
        failures = []

        def closer():
            try:
                for _ in range(10):
                    backend.close()
            except Exception as exc:  # pragma: no cover - the regression
                failures.append(exc)

        threads = [threading.Thread(target=closer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert failures == []

    def test_close_racing_inflight_wave_stays_correct(self):
        import threading
        import time

        backend = ThreadBackend(4)
        release = threading.Event()

        def task(index):
            release.wait(2.0)
            time.sleep(0.01)
            return index * index

        out = []
        runner = threading.Thread(
            target=lambda: out.append(backend.run_tasks(task, 8))
        )
        runner.start()
        time.sleep(0.05)  # the wave is in flight on the pool
        release.set()
        backend.close()  # races the running wave
        runner.join()
        assert out == [[index * index for index in range(8)]]

    def test_distributed_close_twice(self):
        backend = backend_mod.DistributedBackend(())
        backend.run_tasks(lambda i: i + 7, 3)
        backend.close()
        backend.close()
