"""Unit tests for the distributed wire protocol and worker daemon.

Framing must survive arbitrary payloads and detect truncation; the
hello handshake must refuse incompatible peers; registrations must be
per-connection (two coordinators sharing a daemon can never collide);
and shipped closures must rebuild over *unpicklable* compiled state,
mirroring the fork registry's guarantee.
"""

import socket
import threading

import pytest

from repro.mapreduce import wire
from repro.mapreduce.worker import FaultSpec, WorkerServer


@pytest.fixture
def server():
    instance = WorkerServer().start()
    yield instance
    instance.stop()


def dial(server: WorkerServer) -> socket.socket:
    sock = wire.connect(server.address, timeout=2.0)
    sock.settimeout(5.0)
    return sock


class TestFraming:
    def test_roundtrip_over_socketpair(self):
        left, right = socket.socketpair()
        try:
            payload = {"nested": [1, "two", (3.0, None)], "blob": b"\x00" * 4096}
            wire.send_frame(left, payload)
            assert wire.recv_frame(right) == payload
        finally:
            left.close()
            right.close()

    def test_eof_mid_frame_raises_wire_error(self):
        left, right = socket.socketpair()
        try:
            left.sendall(b"\x00\x00\x00\x00\x00\x00\x00\xff")  # promises 255 bytes
            left.close()  # ...but delivers none: a torn connection
            with pytest.raises(wire.WireError):
                wire.recv_frame(right)
        finally:
            right.close()

    def test_oversized_header_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall((wire.MAX_FRAME_BYTES + 1).to_bytes(8, "big"))
            with pytest.raises(wire.WireError, match="cap"):
                wire.recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_parse_addr(self):
        assert wire.parse_addr(" 127.0.0.1:7601 ") == ("127.0.0.1", 7601)
        assert wire.parse_addr("host:0") is None
        assert wire.parse_addr("host:70000") is None
        assert wire.parse_addr(":7601") is None
        assert wire.parse_addr("7601") is None
        assert wire.parse_addr("") is None


class TestHandshake:
    @pytest.mark.skipif(
        not wire.closure_transport_available(),
        reason="a cloudpickle-less peer is by design incompatible",
    )
    def test_hello_ack_is_compatible(self, server):
        sock = dial(server)
        try:
            wire.send_frame(sock, ("hello", wire.peer_info()))
            kind, info = wire.recv_frame(sock)
            assert kind == "hello-ack"
            assert wire.compatible(info)
        finally:
            sock.close()

    def test_incompatible_peer_rejected(self):
        assert not wire.compatible({"format": wire.WIRE_FORMAT + 1})
        assert not wire.compatible({"format": wire.WIRE_FORMAT, "python": (2, 7)})
        assert not wire.compatible("banner string")

    def test_closureless_worker_rejected(self):
        """A worker that cannot rebuild shipped closures must be refused
        at hello time, not misdiagnosed as a lost host at register time."""
        info = dict(wire.peer_info())
        info["closures"] = False
        assert not wire.compatible(info)

    def test_repro_version_skew_rejected(self):
        """cloudpickle ships repro symbols by reference, so a worker on
        a different checkout would run different code and silently break
        bit-identity — the handshake must refuse it instead."""
        skewed = dict(wire.peer_info())
        skewed["repro"] = "0.0.0-older"
        assert not wire.compatible(skewed)

    def test_wrong_arity_answered_not_crashed(self, server):
        """A short tuple must get the malformed-message reply, not kill
        the handler thread mid-connection."""
        sock = dial(server)
        try:
            wire.send_frame(sock, ("task",))
            assert wire.recv_frame(sock) == ("error", "malformed message")
            wire.send_frame(sock, ("register", 1))  # missing the blob
            assert wire.recv_frame(sock) == ("error", "malformed message")
            # The connection survived and still answers.
            wire.send_frame(sock, ("ping", 9))
            assert wire.recv_frame(sock) == ("pong", 9)
        finally:
            sock.close()

    def test_ping_pong(self, server):
        sock = dial(server)
        try:
            wire.send_frame(sock, ("ping", 42))
            assert wire.recv_frame(sock) == ("pong", 42)
        finally:
            sock.close()


@pytest.mark.skipif(
    not wire.closure_transport_available(), reason="cloudpickle unavailable"
)
class TestRegistryAndTasks:
    def register(self, sock, token, fn):
        wire.send_frame(sock, ("register", token, wire.dumps_task_fn(fn)))
        assert wire.recv_frame(sock) == ("registered", token)

    def test_ships_unpicklable_closures(self, server):
        """The remote handshake covers exactly what the fork registry
        covered: callables standard pickle rejects."""
        import pickle

        captured = {"table": [10, 20, 30, 40], "offset": 7}
        fn = lambda i: captured["table"][i] + captured["offset"]  # noqa: E731
        with pytest.raises(Exception):
            pickle.dumps(fn)
        sock = dial(server)
        try:
            self.register(sock, 1, fn)
            for index in range(4):
                wire.send_frame(sock, ("task", 1, index))
                assert wire.recv_frame(sock) == ("result", index, fn(index))
        finally:
            sock.close()

    def test_registrations_are_per_connection(self, server):
        first = dial(server)
        second = dial(server)
        try:
            self.register(first, 1, lambda i: "first")
            self.register(second, 1, lambda i: "second")  # same token, no clash
            wire.send_frame(first, ("task", 1, 0))
            assert wire.recv_frame(first) == ("result", 0, "first")
            wire.send_frame(second, ("task", 1, 0))
            assert wire.recv_frame(second) == ("result", 0, "second")
            # A token registered on one connection is unknown on another.
            wire.send_frame(second, ("task", 99, 0))
            kind, _index, error = wire.recv_frame(second)
            assert kind == "task-error"
            assert isinstance(error, KeyError)
        finally:
            first.close()
            second.close()

    def test_unregister_frees_the_token(self, server):
        sock = dial(server)
        try:
            self.register(sock, 5, lambda i: i)
            wire.send_frame(sock, ("unregister", 5))
            assert wire.recv_frame(sock) == ("unregistered", 5)
            wire.send_frame(sock, ("task", 5, 0))
            assert wire.recv_frame(sock)[0] == "task-error"
        finally:
            sock.close()

    def test_task_exception_travels_with_its_type(self, server):
        def boom(index):
            raise ValueError(f"index {index} exploded")

        sock = dial(server)
        try:
            self.register(sock, 1, boom)
            wire.send_frame(sock, ("task", 1, 3))
            kind, index, error = wire.recv_frame(sock)
            assert (kind, index) == ("task-error", 3)
            assert isinstance(error, ValueError)
            assert "index 3 exploded" in str(error)
        finally:
            sock.close()

    def test_unshippable_registration_reports_register_error(self, server):
        sock = dial(server)
        try:
            wire.send_frame(sock, ("register", 1, b"not a pickle"))
            kind, token, message = wire.recv_frame(sock)
            assert (kind, token) == ("register-error", 1)
            assert message
        finally:
            sock.close()


class TestLifecycle:
    def test_shutdown_message_stops_the_daemon(self):
        server = WorkerServer().start()
        sock = dial(server)
        try:
            wire.send_frame(sock, ("shutdown",))
            # The accept thread unblocks and dies with the listener.
            server._thread.join(timeout=5.0)
            assert not server._thread.is_alive()
        finally:
            sock.close()
            server.stop()

    def test_fault_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(mode="melt", after_tasks=1)
        with pytest.raises(ValueError):
            FaultSpec(mode="kill", after_tasks=0)

    def test_concurrent_connections_share_the_task_counter(self):
        """Fault arming counts tasks across all connections — that is
        what lets one flag fire mid-phase whichever connection lands the
        N-th task."""
        server = WorkerServer(fault=FaultSpec("drop", 3)).start()
        socks = [dial(server), dial(server)]
        results = []
        try:
            if wire.closure_transport_available():
                for token, sock in enumerate(socks, start=1):
                    wire.send_frame(
                        sock, ("register", token, wire.dumps_task_fn(lambda i: i))
                    )
                    assert wire.recv_frame(sock)[0] == "registered"
                for attempt in range(4):
                    for token, sock in enumerate(socks, start=1):
                        try:
                            wire.send_frame(sock, ("task", token, attempt))
                            results.append(wire.recv_frame(sock))
                        except (wire.WireError, OSError):
                            results.append("lost")
                assert "lost" in results  # the drop fired within the batch
        finally:
            for sock in socks:
                sock.close()
            server.stop()
