"""Failure-injection tests: the simulator must fail loudly, not wrongly.

A cost simulator that silently produces bad answers under malformed jobs
would poison every benchmark built on it, so every contract violation —
bad reducer counts, rogue partitioners, crashing user code, unit
under-allocation — must surface as an explicit error, and partial
failures must not corrupt HDFS state.
"""

import pytest

from repro.errors import ExecutionError
from repro.mapreduce.config import ClusterConfig
from repro.mapreduce.hdfs import DistributedFile
from repro.mapreduce.job import MapReduceJobSpec, TaskContext
from repro.mapreduce.runtime import SimulatedCluster


def small_file(name: str = "input", rows: int = 10) -> DistributedFile:
    return DistributedFile(
        name=name,
        records=[(i, i * 3) for i in range(rows)],
        record_width=16,
        tag=name,
    )


def identity_spec(file: DistributedFile, **overrides) -> MapReduceJobSpec:
    def mapper(tag, record, ctx):
        yield record[0] % 4, record

    def reducer(key, values, ctx):
        for value in values:
            yield value

    settings = dict(
        name="probe",
        inputs=[file],
        mapper=mapper,
        reducer=reducer,
        num_reducers=4,
    )
    settings.update(overrides)
    return MapReduceJobSpec(**settings)


class TestSpecValidation:
    def test_zero_reducers_rejected(self):
        with pytest.raises(ExecutionError):
            identity_spec(small_file(), num_reducers=0)

    def test_no_inputs_rejected(self):
        with pytest.raises(ExecutionError):
            identity_spec(small_file(), inputs=[])

    def test_negative_comparison_charge_rejected(self):
        ctx = TaskContext()
        with pytest.raises(ExecutionError):
            ctx.charge_comparisons(-1)


class TestRuntimeContracts:
    def test_more_reducers_than_units_rejected(self):
        cluster = SimulatedCluster(ClusterConfig().with_units(2))
        spec = identity_spec(small_file(), num_reducers=4)
        with pytest.raises(ExecutionError, match="exceed"):
            cluster.run_job(spec)

    def test_zero_units_rejected(self):
        cluster = SimulatedCluster()
        spec = identity_spec(small_file())
        with pytest.raises(ExecutionError):
            cluster.run_job(spec, map_units=0)

    def test_empty_input_rejected(self):
        cluster = SimulatedCluster()
        spec = identity_spec(small_file(rows=10))
        spec.inputs = [
            DistributedFile(name="empty", records=[], record_width=16, tag="e")
        ]
        with pytest.raises(ExecutionError, match="empty"):
            cluster.run_job(spec)

    def test_rogue_partitioner_detected(self):
        cluster = SimulatedCluster()
        spec = identity_spec(
            small_file(), partitioner=lambda key, n: n + 3  # out of range
        )
        with pytest.raises(ExecutionError, match="outside"):
            cluster.run_job(spec)

    def test_negative_partitioner_detected(self):
        cluster = SimulatedCluster()
        spec = identity_spec(small_file(), partitioner=lambda key, n: -1)
        with pytest.raises(ExecutionError, match="outside"):
            cluster.run_job(spec)


class TestUserCodeCrashes:
    def test_mapper_exception_propagates(self):
        cluster = SimulatedCluster()

        def bad_mapper(tag, record, ctx):
            raise RuntimeError("mapper bug")
            yield  # pragma: no cover

        spec = identity_spec(small_file())
        spec.mapper = bad_mapper
        with pytest.raises(RuntimeError, match="mapper bug"):
            cluster.run_job(spec)

    def test_reducer_exception_propagates(self):
        cluster = SimulatedCluster()

        def bad_reducer(key, values, ctx):
            raise ValueError("reducer bug")
            yield  # pragma: no cover

        spec = identity_spec(small_file())
        spec.reducer = bad_reducer
        with pytest.raises(ValueError, match="reducer bug"):
            cluster.run_job(spec)

    def test_failed_job_does_not_publish_output(self):
        """A crashed job must leave no output file in HDFS."""
        cluster = SimulatedCluster()

        def bad_reducer(key, values, ctx):
            raise ValueError("boom")
            yield  # pragma: no cover

        spec = identity_spec(small_file(), output_name="crash.out")
        spec.reducer = bad_reducer
        with pytest.raises(ValueError):
            cluster.run_job(spec)
        with pytest.raises(ExecutionError):
            cluster.hdfs.get("crash.out")


class TestRecoveryAfterFailure:
    def test_cluster_usable_after_failed_job(self):
        cluster = SimulatedCluster()

        def bad_mapper(tag, record, ctx):
            raise RuntimeError("first job dies")
            yield  # pragma: no cover

        bad = identity_spec(small_file("in1"), output_name="bad.out")
        bad.mapper = bad_mapper
        with pytest.raises(RuntimeError):
            cluster.run_job(bad)

        good = identity_spec(small_file("in2"), name="good")
        result = cluster.run_job(good)
        assert result.metrics.output_records == 10
        assert cluster.hdfs.get(result.output.name) is result.output
