"""The content-addressed data plane: closure splitting + blob verbs.

Covers the PR 8 wire additions end to end at the protocol level:

* :func:`~repro.mapreduce.wire.split_task_fn` /
  :func:`~repro.mapreduce.wire.join_task_fn` — the split closure must
  rebuild to an identical callable, heavy captures must leave the slim
  pickle, small or unpicklable captures must stay inline, and the same
  content must always produce the same digest;
* the worker's ``blob-has`` / ``blob-put`` / ``blob-get`` verbs and the
  split ``register`` shape, including the ``register-missing`` repair
  path a corrupt or evicted payload triggers;
* the bounded per-connection registry (leaked registrations must not
  grow worker RSS forever).
"""

import socket

import pytest

from repro.mapreduce import wire
from repro.mapreduce import worker as worker_mod
from repro.mapreduce.worker import REGISTRY_MAX_ENTRIES, WorkerServer
from repro.storage import blob_digest

pytestmark = pytest.mark.skipif(
    not wire.closure_transport_available(), reason="cloudpickle unavailable"
)


@pytest.fixture(autouse=True)
def _blob_env(tmp_path, monkeypatch):
    """Each test gets a private worker blob tier under a tmp cache dir."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    worker_mod.reset_blob_state()
    yield
    worker_mod.reset_blob_state()


@pytest.fixture
def server():
    instance = WorkerServer().start()
    yield instance
    instance.stop()


def dial(server: WorkerServer) -> socket.socket:
    sock = wire.connect(server.address, timeout=2.0)
    sock.settimeout(5.0)
    return sock


def heavy_fn():
    """A closure over a capture big enough to externalize."""
    table = [(i, i * 3, f"row-{i}") for i in range(500)]
    offset = 7
    return lambda i: table[i][1] + offset  # noqa: E731


class TestSplitJoin:
    def test_split_moves_heavy_captures_out_of_the_slim_pickle(self):
        fn = heavy_fn()
        full = wire.dumps_task_fn(fn)
        slim, blobs = wire.split_task_fn(fn)
        assert blobs, "the captured table must externalize"
        assert len(slim) < len(full) / 4
        for digest, payload in blobs.items():
            assert blob_digest(payload) == digest

    def test_join_rebuilds_an_equivalent_callable(self):
        fn = heavy_fn()
        slim, blobs = wire.split_task_fn(fn)

        def fetch(digest):
            # Recursive, like the worker: a body blob's own payload
            # references resolve right back through the fetcher.
            return wire.load_payload(blobs[digest], fetch)

        rebuilt = wire.join_task_fn(slim, fetch)
        assert [rebuilt(i) for i in range(10)] == [fn(i) for i in range(10)]

    def test_digests_are_stable_across_splits(self):
        first = wire.split_task_fn(heavy_fn())
        second = wire.split_task_fn(heavy_fn())
        assert set(first[1]) == set(second[1])

    def test_small_captures_stay_inline(self):
        small = [1, 2, 3]
        fn = lambda i: small[i]  # noqa: E731
        slim, blobs = wire.split_task_fn(fn)
        assert blobs == {}
        assert wire.join_task_fn(slim, None)(1) == 2

    def test_unpicklable_captures_ride_in_the_body(self):
        """A big list of compiled closures defeats plain pickle; it must
        ride in the cloudpickled body — the body itself externalizing as
        one content-addressed blob — and never produce a data payload or
        break the split."""
        closures = [(lambda base: lambda i: i + base)(n) for n in range(100)]
        fn = lambda i: closures[i](i)  # noqa: E731
        slim, blobs = wire.split_task_fn(fn)
        assert len(blobs) == 1  # the body blob, nothing else

        def fetch(digest):
            return wire.load_payload(blobs[digest], fetch)

        assert wire.join_task_fn(slim, fetch)(3) == 6

    def test_repeated_references_collapse_to_one_digest(self):
        shared = [(i, i) for i in range(2000)]
        fn = (lambda a, b: lambda i: a[i][0] + b[i][1])(shared, shared)
        slim, blobs = wire.split_task_fn(fn)
        # One payload for the shared capture (both cells reference it),
        # plus at most the externalized body — never two data copies.
        assert len(blobs) <= 2
        decoded = {}

        def fetch(digest):
            if digest not in decoded:
                decoded[digest] = wire.load_payload(blobs[digest], fetch)
            return decoded[digest]

        rebuilt = wire.join_task_fn(slim, fetch)
        assert rebuilt(5) == 10
        assert [d for d in decoded.values() if d == shared]


class TestBlobVerbs:
    def test_put_has_get_round_trip(self, server):
        payload = b"shipped payload bytes" * 100
        digest = blob_digest(payload)
        sock = dial(server)
        try:
            wire.send_frame(sock, ("blob-has", [digest]))
            assert wire.recv_frame(sock) == ("blob-have", [digest])
            wire.send_frame(sock, ("blob-put", digest, payload))
            assert wire.recv_frame(sock) == ("blob-stored", digest)
            wire.send_frame(sock, ("blob-has", [digest]))
            assert wire.recv_frame(sock) == ("blob-have", [])
            wire.send_frame(sock, ("blob-get", digest))
            assert wire.recv_frame(sock) == ("blob", digest, payload)
        finally:
            sock.close()

    def test_put_with_wrong_digest_is_a_blob_error(self, server):
        sock = dial(server)
        try:
            wire.send_frame(sock, ("blob-put", "0" * 64, b"mismatched"))
            reply = wire.recv_frame(sock)
            assert reply[0] == "blob-error"
            assert reply[1] == "0" * 64
        finally:
            sock.close()

    def test_blobs_outlive_connections(self, server):
        payload = b"x" * 5000
        digest = blob_digest(payload)
        first = dial(server)
        try:
            wire.send_frame(first, ("blob-put", digest, payload))
            assert wire.recv_frame(first)[0] == "blob-stored"
        finally:
            first.close()
        second = dial(server)
        try:
            wire.send_frame(second, ("blob-has", [digest]))
            assert wire.recv_frame(second) == ("blob-have", [])
        finally:
            second.close()


class TestSplitRegister:
    def register_split(self, sock, token, fn):
        """The coordinator's register-by-digest conversation, by hand."""
        slim, blobs = wire.split_task_fn(fn)
        assert blobs
        wire.send_frame(sock, ("blob-has", list(blobs)))
        _kind, missing = wire.recv_frame(sock)
        for digest in missing:
            wire.send_frame(sock, ("blob-put", digest, blobs[digest]))
            assert wire.recv_frame(sock)[0] == "blob-stored"
        wire.send_frame(sock, ("register", token, slim, list(blobs)))
        return wire.recv_frame(sock), slim, blobs

    def test_register_by_digest_runs_tasks(self, server):
        fn = heavy_fn()
        sock = dial(server)
        try:
            reply, _slim, _blobs = self.register_split(sock, 1, fn)
            assert reply == ("registered", 1)
            for index in (0, 3, 9):
                wire.send_frame(sock, ("task", 1, index))
                assert wire.recv_frame(sock) == ("result", index, fn(index))
        finally:
            sock.close()

    def test_register_with_absent_blobs_reports_missing(self, server):
        slim, blobs = wire.split_task_fn(heavy_fn())
        sock = dial(server)
        try:
            wire.send_frame(sock, ("register", 1, slim, list(blobs)))
            kind, token, missing = wire.recv_frame(sock)
            assert (kind, token) == ("register-missing", 1)
            assert set(missing) == set(blobs)
            # The repair path: put the bytes, retry, run.
            for digest in missing:
                wire.send_frame(sock, ("blob-put", digest, blobs[digest]))
                assert wire.recv_frame(sock)[0] == "blob-stored"
            wire.send_frame(sock, ("register", 1, slim, list(blobs)))
            assert wire.recv_frame(sock) == ("registered", 1)
            wire.send_frame(sock, ("task", 1, 2))
            assert wire.recv_frame(sock)[0] == "result"
        finally:
            sock.close()

    def test_corrupt_blob_triggers_delete_and_refetch(self, server):
        """A payload that rotted on the worker's disk between the put and
        the register must surface as ``register-missing`` — never run a
        wrong closure, never crash."""
        fn = heavy_fn()
        slim, blobs = wire.split_task_fn(fn)
        sock = dial(server)
        try:
            for digest, payload in blobs.items():
                wire.send_frame(sock, ("blob-put", digest, payload))
                assert wire.recv_frame(sock)[0] == "blob-stored"
            store = worker_mod._blob_store()
            for digest in blobs:
                store._path(digest).write_bytes(b"rot")
            wire.send_frame(sock, ("register", 1, slim, list(blobs)))
            kind, _token, missing = wire.recv_frame(sock)
            assert kind == "register-missing"
            assert set(missing) == set(blobs)
            for digest in missing:
                wire.send_frame(sock, ("blob-put", digest, blobs[digest]))
                assert wire.recv_frame(sock)[0] == "blob-stored"
            wire.send_frame(sock, ("register", 1, slim, list(blobs)))
            assert wire.recv_frame(sock) == ("registered", 1)
            wire.send_frame(sock, ("task", 1, 4))
            assert wire.recv_frame(sock) == ("result", 4, fn(4))
        finally:
            sock.close()

    def test_legacy_three_tuple_register_still_accepted(self, server):
        sock = dial(server)
        try:
            wire.send_frame(sock, ("register", 7, wire.dumps_task_fn(lambda i: i)))
            assert wire.recv_frame(sock) == ("registered", 7)
            wire.send_frame(sock, ("task", 7, 5))
            assert wire.recv_frame(sock) == ("result", 5, 5)
        finally:
            sock.close()


class TestBoundedRegistry:
    def test_leaked_registrations_are_evicted_lru(self, server):
        """A connection that never unregisters must stay bounded: the
        oldest idle token falls off, recently used tokens survive."""
        sock = dial(server)
        try:
            blob = wire.dumps_task_fn(lambda i: i)
            for token in range(REGISTRY_MAX_ENTRIES + 2):
                wire.send_frame(sock, ("register", token, blob))
                assert wire.recv_frame(sock) == ("registered", token)
                if token == REGISTRY_MAX_ENTRIES - 1:
                    # Touch token 0 so it is NOT the LRU victim.
                    wire.send_frame(sock, ("task", 0, 1))
                    assert wire.recv_frame(sock)[0] == "result"
            # Token 0 was refreshed by its task; token 1 was the oldest
            # untouched registration and must be gone.
            wire.send_frame(sock, ("task", 0, 1))
            assert wire.recv_frame(sock)[0] == "result"
            wire.send_frame(sock, ("task", 1, 1))
            kind, _index, error = wire.recv_frame(sock)
            assert kind == "task-error"
            assert isinstance(error, KeyError)
            # The newest registrations all still work.
            wire.send_frame(sock, ("task", REGISTRY_MAX_ENTRIES + 1, 3))
            assert wire.recv_frame(sock)[0] == "result"
        finally:
            sock.close()
