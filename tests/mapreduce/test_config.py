"""Tests for the cluster configuration (Table 1 parameters)."""

import pytest

from repro.mapreduce.config import (
    PAPER_CLUSTER,
    PAPER_CLUSTER_KP64,
    ClusterConfig,
    HadoopParameters,
)
from repro.utils import MB


class TestHadoopParameters:
    """Table 1: the paper's Hadoop parameter configuration ("Set" column)."""

    def test_table1_defaults(self):
        params = HadoopParameters()
        assert params.fs_block_size == 64 * MB
        assert params.io_sort_mb == 512
        assert params.io_sort_record_percentage == 0.1
        assert params.io_sort_spill_percentage == 0.9
        assert params.io_sort_factor == 300
        assert params.dfs_replication == 3

    def test_spill_threshold(self):
        params = HadoopParameters()
        assert params.spill_threshold_bytes == 512 * MB * 0.9


class TestClusterConfig:
    def test_paper_cluster_has_96_units(self):
        # 13 nodes, one master, 8 cores per worker: kP = 96 (Figures 9/12).
        assert PAPER_CLUSTER.total_units == 96

    def test_testdfsio_rates(self):
        # Section 6.1: writing 14.69 MB/s, reading 74.26 MB/s.
        assert PAPER_CLUSTER.disk_read_mb_s == pytest.approx(74.26)
        assert PAPER_CLUSTER.disk_write_mb_s == pytest.approx(14.69)

    def test_with_units_caps_total(self):
        assert PAPER_CLUSTER_KP64.total_units == 64
        for units in (1, 5, 16, 50, 96):
            assert PAPER_CLUSTER.with_units(units).total_units <= units + 7
            assert PAPER_CLUSTER.with_units(units).total_units >= units - 7

    def test_with_units_preserves_rates(self):
        small = PAPER_CLUSTER.with_units(8)
        assert small.disk_read_mb_s == PAPER_CLUSTER.disk_read_mb_s
        assert small.network_mb_s == PAPER_CLUSTER.network_mb_s

    def test_with_units_rejects_zero(self):
        with pytest.raises(ValueError):
            PAPER_CLUSTER.with_units(0)

    def test_with_noise(self):
        noisy = PAPER_CLUSTER.with_noise(0.1)
        assert noisy.noise_sigma == 0.1
        assert PAPER_CLUSTER.noise_sigma == 0.0  # original untouched

    def test_byte_rates(self):
        config = ClusterConfig()
        assert config.disk_read_bytes_s == config.disk_read_mb_s * MB
