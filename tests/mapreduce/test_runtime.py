"""Tests for the simulated MapReduce runtime (execution + Figure 3 timing)."""

import pytest

from repro.errors import ExecutionError
from repro.mapreduce.config import ClusterConfig
from repro.mapreduce.hdfs import DistributedFile
from repro.mapreduce.job import MapReduceJobSpec, estimate_width
from repro.mapreduce.runtime import SimulatedCluster
from repro.utils import MB


def word_count_spec(records, num_reducers=4, name="wc"):
    file = DistributedFile("words", records=list(records), record_width=16)

    def mapper(tag, record, ctx):
        for word in record.split():
            yield word, 1

    def reducer(key, values, ctx):
        yield (key, sum(values))

    return MapReduceJobSpec(
        name=name,
        inputs=[file],
        mapper=mapper,
        reducer=reducer,
        num_reducers=num_reducers,
    )


class TestExecutionSemantics:
    def test_word_count_is_exact(self):
        cluster = SimulatedCluster()
        spec = word_count_spec(["a b a", "b c", "a"])
        result = cluster.run_job(spec)
        counts = dict(result.output.records)
        assert counts == {"a": 3, "b": 2, "c": 1}

    def test_output_stored_in_hdfs(self):
        cluster = SimulatedCluster()
        result = cluster.run_job(word_count_spec(["x"]))
        assert cluster.hdfs.get(result.output.name) is result.output

    def test_record_index_visible_to_mapper(self):
        cluster = SimulatedCluster()
        file = DistributedFile("f", records=["a", "b", "c"], record_width=8)
        seen = []

        def mapper(tag, record, ctx):
            seen.append(ctx.record_index)
            return []

        def reducer(key, values, ctx):
            return []

        # One key must be produced to avoid a degenerate job; emit per record.
        def mapper2(tag, record, ctx):
            seen.append(ctx.record_index)
            yield 0, record

        spec = MapReduceJobSpec(
            name="idx", inputs=[file], mapper=mapper2, reducer=reducer,
            num_reducers=1,
        )
        cluster.run_job(spec)
        assert seen == [0, 1, 2]

    def test_partitioner_out_of_range_rejected(self):
        cluster = SimulatedCluster()
        spec = word_count_spec(["a"], num_reducers=2)
        spec.partitioner = lambda key, n: 5
        with pytest.raises(ExecutionError):
            cluster.run_job(spec)

    def test_too_many_reducers_rejected(self):
        cluster = SimulatedCluster()
        with pytest.raises(ExecutionError):
            cluster.run_job(word_count_spec(["a"], num_reducers=10_000))

    def test_empty_input_rejected(self):
        cluster = SimulatedCluster()
        file = DistributedFile("e", records=[], record_width=8)
        spec = MapReduceJobSpec(
            name="empty", inputs=[file],
            mapper=lambda t, r, c: [], reducer=lambda k, v, c: [],
            num_reducers=1,
        )
        with pytest.raises(ExecutionError):
            cluster.run_job(spec)

    def test_comparisons_counted(self):
        cluster = SimulatedCluster()
        file = DistributedFile("f", records=[1, 2, 3], record_width=8)

        def mapper(tag, record, ctx):
            yield 0, record

        def reducer(key, values, ctx):
            ctx.charge_comparisons(len(values) ** 2)
            return []

        spec = MapReduceJobSpec(
            name="cmp", inputs=[file], mapper=mapper, reducer=reducer,
            num_reducers=1,
        )
        metrics = cluster.run_job(spec).metrics
        assert metrics.reduce_comparisons == 9


class TestTimingModel:
    """The Figure 3 phase model: rounds, overlap, skew domination."""

    def _big_file(self, records=64, width=32 * MB):
        return DistributedFile("big", records=list(range(records)), record_width=width)

    def _identity_spec(self, file, num_reducers, name="t"):
        def mapper(tag, record, ctx):
            yield ctx.record_index % num_reducers, record

        def reducer(key, values, ctx):
            return []

        return MapReduceJobSpec(
            name=name, inputs=[file], mapper=mapper, reducer=reducer,
            num_reducers=num_reducers, pair_width=file.record_width + 12,
        )

    def test_map_rounds_counted(self):
        config = ClusterConfig().with_units(8)
        cluster = SimulatedCluster(config)
        file = self._big_file(records=64)  # 2GB -> 32 map tasks
        metrics = cluster.run_job(self._identity_spec(file, 4)).metrics
        assert metrics.num_map_tasks == 32
        assert metrics.map_rounds == 4  # 32 tasks over 8 units

    def test_fewer_units_is_slower(self):
        file = self._big_file()
        fast = SimulatedCluster(ClusterConfig())
        slow = SimulatedCluster(ClusterConfig())
        t_fast = fast.run_job(self._identity_spec(file, 4), map_units=96).metrics
        t_slow = slow.run_job(self._identity_spec(file, 4), map_units=8).metrics
        assert t_slow.total_time_s > t_fast.total_time_s

    def test_startup_included(self):
        cluster = SimulatedCluster()
        metrics = cluster.run_job(word_count_spec(["a"])).metrics
        assert metrics.total_time_s >= cluster.config.job_startup_s

    def test_noise_deterministic_per_job_name(self):
        config = ClusterConfig().with_noise(0.1)
        m1 = SimulatedCluster(config).run_job(word_count_spec(["a b"], name="n1")).metrics
        m2 = SimulatedCluster(config).run_job(word_count_spec(["a b"], name="n1")).metrics
        m3 = SimulatedCluster(config).run_job(word_count_spec(["a b"], name="n3")).metrics
        assert m1.total_time_s == m2.total_time_s
        assert m1.total_time_s != m3.total_time_s

    def test_skewed_reducer_dominates(self):
        cluster = SimulatedCluster()
        file = self._big_file(records=64)

        def skewed_mapper(tag, record, ctx):
            yield 0, record  # everything to reducer 0

        def reducer(key, values, ctx):
            return []

        spec = MapReduceJobSpec(
            name="skew", inputs=[file], mapper=skewed_mapper, reducer=reducer,
            num_reducers=8, pair_width=file.record_width + 12,
        )
        balanced = cluster.run_job(self._identity_spec(file, 8, name="bal"))
        skewed = cluster.run_job(spec)
        assert skewed.metrics.reducer_skew > balanced.metrics.reducer_skew
        assert skewed.metrics.reduce_time_s > balanced.metrics.reduce_time_s

    def test_metrics_ratios(self):
        cluster = SimulatedCluster()
        file = self._big_file(records=16)
        metrics = cluster.run_job(self._identity_spec(file, 4)).metrics
        assert metrics.map_output_ratio == pytest.approx(
            metrics.map_output_bytes / metrics.input_bytes
        )


class TestEstimateWidth:
    def test_primitives(self):
        assert estimate_width(5) == 8
        assert estimate_width(1.5) == 8
        assert estimate_width(True) == 1
        assert estimate_width(None) == 1
        assert estimate_width("abcd") == 8

    def test_containers_recursive(self):
        assert estimate_width((1, 2)) == 4 + 16
        assert estimate_width([1, (2, 3)]) == 4 + 8 + (4 + 16)
