"""Backend equivalence: serial vs thread vs process, bit for bit.

The execution backend may only change *where* independent map chunks,
reduce buckets, and ready-wave jobs run — never any output, counter, or
simulated time.  This suite executes every planner's plan for the
paper's mobile queries and the TPC-H extensions under all three
backends and requires the full observable outcome (result rows in
order, raw composites, makespan, merge time, and every per-job metric
including shuffle bytes and reducer input bytes) to be identical to the
serial run.
"""

import pytest

from repro.baselines import HivePlanner, PigPlanner, YSmartPlanner
from repro.core.executor import PlanExecutor
from repro.core.planner import ThetaJoinPlanner
from repro.mapreduce.backend import close_backends
from repro.mapreduce.config import PAPER_CLUSTER_KP64
from repro.mapreduce.runtime import SimulatedCluster
from repro.workloads.mobile import mobile_benchmark_query
from repro.workloads.tpch import tpch_benchmark_query

METHOD_PLANNERS = (ThetaJoinPlanner, YSmartPlanner, HivePlanner, PigPlanner)

BACKENDS = ("serial", "thread", "process")


def outcome_digest(outcome):
    """Everything observable about one execution, hashable-comparable."""
    report = outcome.report
    return (
        tuple(map(tuple, outcome.result.rows)),
        tuple(outcome.composites),
        report.makespan_s,
        report.merge_time_s,
        report.output_records,
        tuple(
            (
                metrics.job_name,
                metrics.num_map_tasks,
                metrics.num_reduce_tasks,
                metrics.map_output_records,
                metrics.map_output_bytes,
                metrics.shuffle_bytes,
                tuple(metrics.reducer_input_bytes),
                metrics.reduce_comparisons,
                metrics.output_records,
                metrics.output_bytes,
                metrics.map_time_s,
                metrics.copy_time_s,
                metrics.reduce_time_s,
                metrics.total_time_s,
            )
            for metrics in report.job_metrics
        ),
    )


def run_with_backend(monkeypatch, backend, plan, query):
    monkeypatch.setenv("REPRO_EXEC_BACKEND", backend)
    monkeypatch.setenv("REPRO_EXEC_WORKERS", "2")
    try:
        outcome = PlanExecutor(SimulatedCluster(PAPER_CLUSTER_KP64)).execute(
            plan, query
        )
    finally:
        monkeypatch.setenv("REPRO_EXEC_BACKEND", "serial")
    return outcome_digest(outcome)


def assert_backends_agree(monkeypatch, query):
    for planner_cls in METHOD_PLANNERS:
        plan = planner_cls(PAPER_CLUSTER_KP64).plan(query)
        digests = {
            backend: run_with_backend(monkeypatch, backend, plan, query)
            for backend in BACKENDS
        }
        assert digests["serial"][0], (
            f"{query.name}/{planner_cls.__name__}: degenerate case, no rows"
        )
        for backend in ("thread", "process"):
            assert digests[backend] == digests["serial"], (
                f"{query.name}/{planner_cls.__name__}: {backend} backend "
                "diverged from serial"
            )


@pytest.fixture(scope="module", autouse=True)
def _shutdown_pools():
    yield
    close_backends()


@pytest.mark.parametrize("query_id", [1, 2, 3, 4])
def test_mobile_backend_equivalence(monkeypatch, query_id):
    assert_backends_agree(monkeypatch, mobile_benchmark_query(query_id, 20))


@pytest.mark.parametrize("query_id", [3, 5, 7])
def test_tpch_backend_equivalence(monkeypatch, query_id):
    assert_backends_agree(monkeypatch, tpch_benchmark_query(query_id, 200))
