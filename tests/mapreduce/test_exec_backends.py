"""Backend equivalence grid: serial vs thread vs process vs distributed.

All grid/digest/driver logic lives in :mod:`conformance` (shared with the
fault-injection suite); this file is just the parameterization: every
planner × every grid query × every parallel backend must reproduce the
serial digest bit for bit.  The distributed leg runs against two real
``repro worker serve`` daemons spawned for the module — once with the
content-addressed blob plane on (the default) and once with
``REPRO_BLOB_SHIP=0`` forcing whole-closure shipping, since the split
must never change *what* runs — and a final guard asserts the leg
actually dispatched remotely (a pool that silently degraded to serial
would make the whole leg vacuous).  The warm-vs-cold test is the PR 8
acceptance criterion: re-running an identical query against a warm
worker blob store must ship at least 10x fewer payload bytes.
"""

import pytest

import conformance
from repro.mapreduce.backend import _BACKENDS, close_backends
from repro.mapreduce.wire import closure_transport_available

PARALLEL_BACKENDS = ("thread", "process", "distributed")


@pytest.fixture(scope="module")
def distributed_workers(tmp_path_factory):
    if not closure_transport_available():  # pragma: no cover - no cloudpickle
        pytest.skip("cloudpickle unavailable: closures cannot ship over TCP")
    # Daemons inherit REPRO_CACHE_DIR at spawn, so the module pool's blob
    # tier lives in a throwaway directory, not the user's cache.
    cache_dir = tmp_path_factory.mktemp("worker-blob-cache")
    with conformance.execution_env(REPRO_CACHE_DIR=str(cache_dir)):
        with conformance.worker_pool(2) as addrs:
            yield addrs


@pytest.fixture(scope="module", autouse=True)
def _shutdown_pools():
    yield
    close_backends()


@pytest.mark.parametrize("query_id", conformance.QUERY_IDS)
@pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
def test_backend_equivalence(request, backend, query_id):
    workers_addrs = ()
    if backend == "distributed":
        workers_addrs = request.getfixturevalue("distributed_workers")
    conformance.assert_backend_matches_serial(
        backend, query_id, workers_addrs=workers_addrs
    )


@pytest.mark.parametrize("query_id", conformance.QUERY_IDS)
def test_distributed_equivalence_with_blob_shipping_off(
    distributed_workers, query_id
):
    """The same grid with the data plane disabled: splitting closures
    into content-addressed payloads is a transport optimisation, so
    digests must be bit-identical whether or not it is on."""
    conformance.assert_backend_matches_serial(
        "distributed",
        query_id,
        workers_addrs=distributed_workers,
        REPRO_BLOB_SHIP="0",
    )


def test_distributed_leg_really_dispatched(distributed_workers):
    """Must run after the grid (file order): the distributed runs above
    may not have degraded to serial behind the assertions' backs."""
    conformance.assert_distributed_really_dispatched(distributed_workers)


def test_warm_rerun_ships_10x_fewer_payload_bytes(tmp_path):
    """PR 8 acceptance: a warm re-run of an identical distributed query
    registers its closures by digest and ships only the slim executable
    parts — at least 10x fewer payload bytes than the cold run."""
    if not closure_transport_available():  # pragma: no cover - no cloudpickle
        pytest.skip("cloudpickle unavailable: closures cannot ship over TCP")
    query_id, planner = "mobile-2", "ours"
    expected = conformance.serial_digest(query_id, planner)
    cache_dir = tmp_path / "blob-cache"
    # A non-default heartbeat keys a *dedicated* backend instance, so the
    # byte counters below cannot be polluted by (or pollute) the module
    # pool's shared backend.
    heartbeat = "1.75"
    with conformance.execution_env(REPRO_CACHE_DIR=str(cache_dir)):
        with conformance.worker_pool(2) as addrs:

            def run_once():
                return conformance.run_with_backend(
                    "distributed",
                    query_id,
                    planner,
                    addrs,
                    REPRO_WORKER_HEARTBEAT_S=heartbeat,
                    REPRO_CACHE_DIR=str(cache_dir),
                )

            assert run_once() == expected
            backend = next(
                b
                for b in _BACKENDS.values()
                if getattr(b, "heartbeat_s", None) == float(heartbeat)
            )
            cold = backend.counters["bytes_shipped"]
            assert backend.counters["blob_puts"] > 0
            backend.reset_counters()
            assert run_once() == expected
            warm = backend.counters["bytes_shipped"]
            assert backend.counters["blob_hits"] > 0
            assert backend.counters["blob_bytes_reused"] > 0
    assert cold > 0 and warm > 0
    assert warm * 10 <= cold, (
        f"warm re-run shipped {warm} bytes vs {cold} cold — "
        "the blob cache stopped deduplicating payloads"
    )
