"""Backend equivalence grid: serial vs thread vs process vs distributed.

All grid/digest/driver logic lives in :mod:`conformance` (shared with the
fault-injection suite); this file is just the parameterization: every
planner × every grid query × every parallel backend must reproduce the
serial digest bit for bit.  The distributed leg runs against two real
``repro worker serve`` daemons spawned for the module, and a final guard
asserts the leg actually dispatched remotely (a pool that silently
degraded to serial would make the whole leg vacuous).
"""

import pytest

import conformance
from repro.mapreduce.backend import close_backends
from repro.mapreduce.wire import closure_transport_available

PARALLEL_BACKENDS = ("thread", "process", "distributed")


@pytest.fixture(scope="module")
def distributed_workers():
    if not closure_transport_available():  # pragma: no cover - no cloudpickle
        pytest.skip("cloudpickle unavailable: closures cannot ship over TCP")
    with conformance.worker_pool(2) as addrs:
        yield addrs


@pytest.fixture(scope="module", autouse=True)
def _shutdown_pools():
    yield
    close_backends()


@pytest.mark.parametrize("query_id", conformance.QUERY_IDS)
@pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
def test_backend_equivalence(request, backend, query_id):
    workers_addrs = ()
    if backend == "distributed":
        workers_addrs = request.getfixturevalue("distributed_workers")
    conformance.assert_backend_matches_serial(
        backend, query_id, workers_addrs=workers_addrs
    )


def test_distributed_leg_really_dispatched(distributed_workers):
    """Must run after the grid (file order): the distributed runs above
    may not have degraded to serial behind the assertions' backs."""
    conformance.assert_distributed_really_dispatched(distributed_workers)
