"""Checkpointing across the full conformance grid: on vs off, cold vs warm.

The acceptance criterion for wave checkpointing: across every planner ×
every grid query, a checkpointed run (cold: storing) and a re-run (warm:
restoring every wave) must both reproduce the checkpoint-free serial
digest bit for bit — rows, composites, simulated times, and every
per-job metric.  One shared cache directory for the whole grid also
exercises cross-entry isolation: 28 grid entries writing into one
checkpoint tier must never restore each other's waves incorrectly.
"""

import pytest

import conformance
from repro.core.executor import reset_checkpoint_counters


@pytest.fixture(scope="module")
def checkpoint_cache(tmp_path_factory):
    """One checkpoint tier shared by the whole grid."""
    return str(tmp_path_factory.mktemp("ckpt-cache"))


@pytest.mark.parametrize("query_id", conformance.QUERY_IDS)
@pytest.mark.parametrize("planner_name", sorted(conformance.METHOD_PLANNERS))
def test_checkpointed_runs_match_serial(query_id, planner_name, checkpoint_cache):
    expected = conformance.serial_digest(query_id, planner_name)
    reset_checkpoint_counters()
    cold = conformance.run_with_backend(
        "serial",
        query_id,
        planner_name,
        REPRO_CHECKPOINT="1",
        REPRO_CACHE_DIR=checkpoint_cache,
    )
    assert cold == expected, (
        f"{query_id}/{planner_name}: cold checkpointed run diverged"
    )
    warm = conformance.run_with_backend(
        "serial",
        query_id,
        planner_name,
        REPRO_CHECKPOINT="1",
        REPRO_CACHE_DIR=checkpoint_cache,
    )
    assert warm == expected, (
        f"{query_id}/{planner_name}: warm (restored) run diverged"
    )


def test_warm_grid_restores_every_wave(checkpoint_cache):
    """A warmed entry replays entirely from the tier: all hits, no stores."""
    from repro.core.executor import checkpoint_counters

    entry = ("serial", "mobile-2", "pig")
    conformance.run_with_backend(  # warm the tier (no-op after the grid)
        *entry, REPRO_CHECKPOINT="1", REPRO_CACHE_DIR=checkpoint_cache
    )
    reset_checkpoint_counters()
    conformance.run_with_backend(
        *entry, REPRO_CHECKPOINT="1", REPRO_CACHE_DIR=checkpoint_cache
    )
    counters = checkpoint_counters()
    assert counters["hits"] > 0
    assert counters["stores"] == 0
