"""Tests for job metrics and execution reports."""

import pytest

from repro.mapreduce.counters import ExecutionReport, JobMetrics


class TestJobMetrics:
    def test_reducer_statistics(self):
        metrics = JobMetrics(job_name="j")
        metrics.reducer_input_bytes = [100, 300, 200]
        assert metrics.max_reducer_input_bytes == 300
        assert metrics.mean_reducer_input_bytes == 200
        assert metrics.reducer_skew == pytest.approx(1.5)

    def test_skew_of_empty_is_one(self):
        assert JobMetrics().reducer_skew == 1.0

    def test_ratios(self):
        metrics = JobMetrics(
            input_bytes=1000, map_output_bytes=500, output_bytes=100
        )
        assert metrics.map_output_ratio == 0.5
        assert metrics.reduce_output_ratio == pytest.approx(0.2)

    def test_ratios_guard_zero(self):
        assert JobMetrics().map_output_ratio == 0.0
        assert JobMetrics().reduce_output_ratio == 0.0

    def test_summary_keys(self):
        summary = JobMetrics(job_name="x").summary()
        for key in ("input_bytes", "total_time_s", "reducer_skew"):
            assert key in summary


class TestExecutionReport:
    def make(self):
        report = ExecutionReport(plan_name="p")
        m1 = JobMetrics(job_name="a")
        m1.shuffle_bytes = 100
        m1.output_bytes = 50
        m1.total_time_s = 2.0
        m2 = JobMetrics(job_name="b")
        m2.shuffle_bytes = 300
        m2.output_bytes = 70
        m2.total_time_s = 3.0
        report.job_metrics = [m1, m2]
        report.makespan_s = 4.0
        return report

    def test_aggregates(self):
        report = self.make()
        assert report.num_jobs == 2
        assert report.total_shuffle_bytes == 400
        assert report.sum_job_time_s == 5.0
        # Only the first job's output is an intermediate.
        assert report.total_intermediate_bytes == 50

    def test_summary(self):
        summary = self.make().summary()
        assert summary["jobs"] == 2
        assert summary["makespan_s"] == 4.0
