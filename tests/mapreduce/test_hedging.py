"""Straggler hedging and the per-worker circuit breaker.

Hedging may only ever change *latency*: a speculative duplicate of a
slow task races the original, the first completion folds
(``results.setdefault``), the loser is dropped.  These tests pin that
contract three ways — a deterministic unit drive of ``_dispatch`` over
fake worker handles, a hypothesis sweep over random straggler points and
worker losses, and a live two-daemon integration run with one worker
slowed by fault injection.

The breaker tests cover its state machine directly: trip at N
consecutive batch losses, exponentially growing cooldown, trust decay on
clean batches, and the dial-skip in ``_live_handles``.
"""

import dataclasses
import threading
import time

import pytest
from hypothesis import given, settings as hsettings, strategies as st

import conformance
from repro.mapreduce.backend import (
    DistributedBackend,
    _WorkerLost,
    close_backends,
)
from repro.mapreduce.config import execution_settings
from repro.mapreduce.wire import closure_transport_available


@pytest.fixture(autouse=True)
def _clean_pools():
    yield
    close_backends()


def hedge_settings(**overrides):
    base = dict(
        hedge=True,
        hedge_quantile=0.5,
        hedge_factor=2.0,
        hedge_min_samples=2,
        hedge_max_per_task=1,
        breaker_threshold=3,
        breaker_cooldown_batches=4,
    )
    base.update(overrides)
    return dataclasses.replace(execution_settings(), **base)


class FakeHandle:
    """A scripted in-process stand-in for one worker's dispatcher handle."""

    def __init__(self, addr, delays=None, lose_at=()):
        self.addr = addr
        self.delays = delays or {}
        self.lose_at = set(lose_at)
        self.dead = threading.Event()
        self.draining = threading.Event()
        self.ran = []

    def register(self, token, slim, blobs=None, account=None):
        pass

    def run_task(self, token, index):
        if index in self.lose_at:
            self.mark_dead()
            raise _WorkerLost(self.addr)
        time.sleep(self.delays.get(index, 0.005))
        self.ran.append(index)
        return (index, self.addr)

    def unregister(self, token):
        pass

    def mark_dead(self):
        self.dead.set()


def dispatch(backend, handles, count, settings):
    def local(index):
        return (index, "local")

    return backend._dispatch(
        local, b"", {}, count, handles, None, False, settings
    )


class TestHedging:
    def test_straggler_is_hedged_and_folds_exactly_once(self):
        backend = DistributedBackend(())
        count = 10
        # Worker a is slow on *every* task, so whichever index it pulls
        # first becomes the straggler; b races through the rest, goes
        # idle with a's index in flight — the hedge trigger state — and
        # folds the hedge copy long before a's primary completes.
        a = FakeHandle("a", delays={index: 0.8 for index in range(count)})
        b = FakeHandle("b")
        out = dispatch(backend, [a, b], count, hedge_settings())
        assert [value[0] for value in out] == list(range(count))
        assert backend.counters["hedges_launched"] >= 1
        assert backend.counters["hedge_wins"] >= 1
        # Every folded value came from b: the hedge won the straggler,
        # and a's eventual completion was dropped, not double-folded.
        assert all(value[1] == "b" for value in out)
        assert backend.tasks_in_flight == 0

    def test_hedge_budget_is_bounded_per_task(self):
        backend = DistributedBackend(())
        count = 8
        # Two idle workers compete to hedge the slow worker's one index;
        # the per-task budget must hold at 1 despite the contention.
        handles = [
            FakeHandle("a", delays={index: 0.6 for index in range(count)}),
            FakeHandle("b"),
            FakeHandle("c"),
        ]
        out = dispatch(
            backend, handles, count, hedge_settings(hedge_max_per_task=1)
        )
        assert [value[0] for value in out] == list(range(count))
        assert backend.counters["hedges_launched"] == 1

    def test_hedging_off_launches_nothing(self):
        backend = DistributedBackend(())
        a = FakeHandle("a", delays={2: 0.4})
        b = FakeHandle("b")
        out = dispatch(backend, [a, b], 6, hedge_settings(hedge=False))
        assert [value[0] for value in out] == list(range(6))
        assert backend.counters["hedges_launched"] == 0

    @hsettings(max_examples=12, deadline=None)
    @given(
        count=st.integers(min_value=4, max_value=9),
        straggler=st.integers(min_value=0, max_value=8),
        lost=st.sets(st.integers(min_value=0, max_value=8), max_size=2),
        lose_straggler_primary=st.booleans(),
    )
    def test_random_straggler_points_never_double_fold(
        self, count, straggler, lost, lose_straggler_primary
    ):
        """Whatever the straggler index, whichever indices die on one
        worker, each index folds exactly once and nothing leaks."""
        straggler = straggler % count
        lost = {index % count for index in lost}
        backend = DistributedBackend(())
        a = FakeHandle(
            "a",
            delays={straggler: 0.25},
            lose_at=lost | ({straggler} if lose_straggler_primary else set()),
        )
        b = FakeHandle("b")  # healthy survivor: retries + hedges land here
        out = dispatch(
            backend, [a, b], count, hedge_settings(hedge_min_samples=1)
        )
        assert len(out) == count
        assert [value[0] for value in out] == list(range(count))
        # Exactly-once folding: every value is a real completion, no
        # index resolved twice, no in-flight accounting leaked.
        assert backend.tasks_in_flight == 0
        assert backend.counters["hedge_wins"] <= backend.counters["hedges_launched"]


class TestBreaker:
    def test_trips_at_threshold_with_exponential_cooldown(self):
        backend = DistributedBackend(("x:1",))
        for _ in range(3):
            backend._record_worker_loss("x:1", threshold=3, cooldown=4)
        state = backend.breaker_state()["x:1"]
        assert state["trips"] == 1
        assert state["failures"] == 0  # streak resets on trip
        assert state["open_until"] == backend._batches + 4
        assert backend.counters["breaker_trips"] == 1
        for _ in range(3):
            backend._record_worker_loss("x:1", threshold=3, cooldown=4)
        assert backend.breaker_state()["x:1"]["open_until"] == (
            backend._batches + 8  # cooldown doubles with each trip
        )

    def test_clean_batches_decay_trust_debt(self):
        backend = DistributedBackend(("x:1",))
        for _ in range(6):
            backend._record_worker_loss("x:1", threshold=3, cooldown=4)
        assert backend.breaker_state()["x:1"]["trips"] == 2
        backend._record_worker_ok("x:1")
        assert backend.breaker_state()["x:1"]["trips"] == 1
        backend._record_worker_ok("x:1")
        assert backend.breaker_state()["x:1"]["trips"] == 0

    def test_open_breaker_skips_the_dial(self):
        backend = DistributedBackend(("127.0.0.1:9",))
        with backend._lock:
            backend._breaker["127.0.0.1:9"] = {
                "failures": 0,
                "trips": 1,
                "open_until": backend._batches + 100,
            }
            live = backend._live_handles()
        assert live == []
        assert backend.counters["breaker_skips"] == 1
        # Not even a redial-backoff entry: the breaker pre-empts dialing.
        assert "127.0.0.1:9" not in backend._redial

    def test_losses_recorded_per_batch_end(self):
        backend = DistributedBackend(())
        lossy = FakeHandle("lossy", lose_at={0, 1, 2, 3, 4, 5, 6, 7})
        healthy = FakeHandle("ok")
        out = dispatch(
            backend, [lossy, healthy], 8, hedge_settings(breaker_threshold=1)
        )
        assert [value[0] for value in out] == list(range(8))
        assert backend.breaker_state()["lossy"]["trips"] == 1
        assert "ok" not in backend.breaker_state() or (
            backend.breaker_state()["ok"]["failures"] == 0
        )


@pytest.mark.skipif(
    not closure_transport_available(), reason="cloudpickle unavailable"
)
class TestLiveFleet:
    def test_slowed_daemon_is_hedged_around(self, tmp_path):
        """Integration: a real two-daemon fleet where one worker sleeps
        1 s per task mid-batch; the healthy daemon hedges the straggler
        and the batch still folds bit-identically."""
        with conformance.worker_pool(
            2,
            extra_args=(
                (),
                ("--fail-mode", "slow", "--fail-after-tasks", "4",
                 "--fail-delay-s", "1.0"),
            ),
        ) as addrs:
            with conformance.execution_env(
                REPRO_CACHE_DIR=str(tmp_path / "cache"),
                REPRO_HEDGE="1",
                REPRO_HEDGE_QUANTILE="0.5",
                REPRO_HEDGE_FACTOR="2.0",
                REPRO_HEDGE_MIN_SAMPLES="3",
            ):
                backend = DistributedBackend(tuple(addrs))
                try:

                    def task(index):
                        time.sleep(0.05)
                        return index * index

                    out = backend.run_tasks(task, 12)
                    assert out == [index * index for index in range(12)]
                    assert backend.counters["hedges_launched"] >= 1
                    assert backend.counters["hedge_wins"] >= 1
                    assert backend.tasks_in_flight == 0
                finally:
                    backend.close()
