"""Cross-backend conformance harness: one equivalence grid, every backend.

The execution backend may only change *where* independent map chunks,
reduce buckets, and ready-wave jobs run — never any output, counter, or
simulated time.  This module is the single home of that contract:

* the **grid** — every planner (ours, YSmart, Hive, Pig) on the paper's
  mobile Q1–Q4 plus the TPC-H q3/q5/q7 extensions;
* the **digest** — the full observable outcome of one execution (result
  rows in order, raw composites, makespan, merge time, and every per-job
  metric including shuffle bytes and reducer input bytes);
* the **drivers** — run one (query, planner) under a chosen backend and
  assert its digest is bit-identical to the serial reference;
* the **worker helpers** — spawn real ``repro worker serve`` daemons as
  subprocesses (with optional fault-injection flags) for the distributed
  backend's legs.

``tests/mapreduce/test_exec_backends.py`` parameterizes the grid over
serial|thread|process|distributed, and
``tests/mapreduce/test_distributed_faults.py`` re-runs grid entries
while killing or stalling workers mid-phase; both import everything from
here, replacing the per-backend test copies that existed before.

Serial reference digests and plans are memoized per process: planning is
deterministic, so every backend leg (and every fault-injection re-run)
compares against the same reference without re-paying the planner.
"""

from __future__ import annotations

import contextlib
import os
from functools import lru_cache

from repro.baselines import HivePlanner, PigPlanner, YSmartPlanner
from repro.core.executor import PlanExecutor
from repro.core.planner import ThetaJoinPlanner
from repro.mapreduce.config import PAPER_CLUSTER_KP64
from repro.mapreduce.runtime import SimulatedCluster

METHOD_PLANNERS = {
    "ours": ThetaJoinPlanner,
    "ysmart": YSmartPlanner,
    "hive": HivePlanner,
    "pig": PigPlanner,
}

#: The paper's benchmark grid: mobile Q1–Q4 at 20 GB, TPC-H q3/5/7 at 200.
QUERY_IDS = (
    "mobile-1",
    "mobile-2",
    "mobile-3",
    "mobile-4",
    "tpch-3",
    "tpch-5",
    "tpch-7",
)

#: Backends every grid entry must agree across.
BACKENDS = ("serial", "thread", "process", "distributed")


# ----------------------------------------------------------------------
# grid construction (memoized: queries and plans are deterministic)
# ----------------------------------------------------------------------


@lru_cache(maxsize=None)
def grid_query(query_id: str):
    kind, _, number = query_id.partition("-")
    if kind == "mobile":
        from repro.workloads.mobile import mobile_benchmark_query

        return mobile_benchmark_query(int(number), 20)
    if kind == "tpch":
        from repro.workloads.tpch import tpch_benchmark_query

        return tpch_benchmark_query(int(number), 200)
    raise ValueError(f"unknown grid query {query_id!r}")


@lru_cache(maxsize=None)
def grid_plan(query_id: str, planner_name: str):
    planner_cls = METHOD_PLANNERS[planner_name]
    return planner_cls(PAPER_CLUSTER_KP64).plan(grid_query(query_id))


# ----------------------------------------------------------------------
# outcome digest
# ----------------------------------------------------------------------


def outcome_digest(outcome):
    """Everything observable about one execution, hashable-comparable."""
    report = outcome.report
    return (
        tuple(map(tuple, outcome.result.rows)),
        tuple(outcome.composites),
        report.makespan_s,
        report.merge_time_s,
        report.output_records,
        tuple(
            (
                metrics.job_name,
                metrics.num_map_tasks,
                metrics.num_reduce_tasks,
                metrics.map_output_records,
                metrics.map_output_bytes,
                metrics.shuffle_bytes,
                tuple(metrics.reducer_input_bytes),
                metrics.reduce_comparisons,
                metrics.output_records,
                metrics.output_bytes,
                metrics.map_time_s,
                metrics.copy_time_s,
                metrics.reduce_time_s,
                metrics.total_time_s,
            )
            for metrics in report.job_metrics
        ),
    )


# ----------------------------------------------------------------------
# drivers
# ----------------------------------------------------------------------


@contextlib.contextmanager
def execution_env(**overrides):
    """Temporarily set (value) or delete (``None``) ``REPRO_*`` vars."""
    saved = {name: os.environ.get(name) for name in overrides}
    try:
        for name, value in overrides.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = str(value)
        yield
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


def _backend_overrides(backend: str, workers_addrs=(), **extra):
    overrides = {
        "REPRO_EXEC_BACKEND": backend,
        "REPRO_EXEC_WORKERS": "2",
        "REPRO_WORKERS_ADDRS": ",".join(workers_addrs) or None,
    }
    overrides.update(extra)
    return overrides


def run_with_backend(backend: str, query_id: str, planner_name: str,
                     workers_addrs=(), **extra_env):
    """Execute one grid entry under ``backend``; returns its digest."""
    plan = grid_plan(query_id, planner_name)
    query = grid_query(query_id)
    with execution_env(**_backend_overrides(backend, workers_addrs, **extra_env)):
        outcome = PlanExecutor(SimulatedCluster(PAPER_CLUSTER_KP64)).execute(
            plan, query
        )
    return outcome_digest(outcome)


@lru_cache(maxsize=None)
def serial_digest(query_id: str, planner_name: str):
    """The serial reference digest every other backend must reproduce."""
    return run_with_backend("serial", query_id, planner_name)


def _distributed_instances():
    from repro.mapreduce.backend import _BACKENDS

    return [
        backend
        for backend in _BACKENDS.values()
        if getattr(backend, "name", "") == "distributed"
    ]


def assert_backend_matches_serial(backend: str, query_id: str,
                                  workers_addrs=(), **extra_env):
    """One grid row: every planner's digest under ``backend`` must be
    bit-identical to the serial reference."""
    for planner_name in METHOD_PLANNERS:
        expected = serial_digest(query_id, planner_name)
        assert expected[0], (
            f"{query_id}/{planner_name}: degenerate case, no rows"
        )
        got = run_with_backend(
            backend, query_id, planner_name, workers_addrs, **extra_env
        )
        assert got == expected, (
            f"{query_id}/{planner_name}: {backend} backend diverged from serial"
        )


def assert_distributed_really_dispatched(workers_addrs=None):
    """Guard against a vacuously-green distributed leg: at least one
    distributed backend instance must exist and none may have degraded
    to serial (no reachable workers / unshippable closure).

    Pass ``workers_addrs`` to scope the check to the pool a test module
    spawned itself — the whole suite may be running under a global
    ``REPRO_EXEC_BACKEND=distributed`` (the CI leg), where unrelated
    tests legitimately create degraded instances (e.g. unreachable-pool
    drills)."""
    instances = _distributed_instances()
    if workers_addrs is not None:
        instances = [
            backend
            for backend in instances
            if set(backend.addrs) == set(workers_addrs)
        ]
    assert instances, "no distributed backend instance was ever created"
    assert not any(b._noted_degraded for b in instances), (
        "distributed backend degraded to serial during the run"
    )


# ----------------------------------------------------------------------
# worker daemons (subprocess helpers)
# ----------------------------------------------------------------------


@contextlib.contextmanager
def worker_pool(count: int = 2, extra_args=()):
    """``count`` daemons for a ``with`` block; yields their addresses.

    Spawning/teardown mechanics live with the daemon itself
    (:func:`repro.mapreduce.worker.spawn_daemon`); this wrapper only
    adds the pool shape.  ``extra_args[i]`` (when present) is a tuple of
    extra CLI flags for the i-th worker — how fault-injection tests arm
    exactly one flaky worker in an otherwise healthy pool.
    """
    from repro.mapreduce.worker import spawn_daemon, stop_daemons

    procs = []
    addrs = []
    try:
        for index in range(count):
            args = tuple(extra_args[index]) if index < len(extra_args) else ()
            proc, addr = spawn_daemon(args)
            procs.append(proc)
            addrs.append(addr)
        yield addrs
    finally:
        stop_daemons(procs)
