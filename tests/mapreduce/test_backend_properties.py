"""Property-based ordering invariants of the execution backends.

Every backend promises ``run_tasks(fn, count) == [fn(0), ..., fn(count-1)]``
— results in submission order, each index folded exactly once — for any
task count, any per-task duration skew, and (distributed) any worker
failure point.  Hypothesis drives those dimensions; the distributed
cases run against real in-process :class:`WorkerServer` instances whose
``drop`` fault severs every connection mid-batch (``kill`` would take
the test runner with it — subprocess kill/stall live in
``test_distributed_faults.py``).

Hypothesis is an optional dependency: the whole module skips when it is
not installed.
"""

import threading
import time

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.mapreduce.backend import (  # noqa: E402
    DistributedBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
)
from repro.mapreduce.wire import closure_transport_available  # noqa: E402
from repro.mapreduce.worker import FaultSpec, WorkerServer  # noqa: E402

RELAXED = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def jitter(index: int, seed: int) -> float:
    """Deterministic per-task duration skew (0–3 ms) from the drawn seed:
    enough to shuffle completion order without slowing the suite."""
    return ((index * 2654435761 + seed) % 7) * 0.0005


@given(
    count=st.integers(min_value=0, max_value=40),
    workers=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=2**31),
)
@RELAXED
def test_thread_backend_orders_and_folds_once(count, workers, seed):
    backend = ThreadBackend(workers)
    executed = []
    lock = threading.Lock()

    def fn(index):
        time.sleep(jitter(index, seed))
        with lock:
            executed.append(index)
        return ("result", index, index * 3 + 1)

    try:
        results = backend.run_tasks(fn, count)
    finally:
        backend.close()
    assert results == [("result", index, index * 3 + 1) for index in range(count)]
    # No retries exist on the thread backend: exactly one execution each.
    assert sorted(executed) == list(range(count))


@given(
    count=st.integers(min_value=0, max_value=16),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=5, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_process_backend_orders_results(count, seed):
    backend = ProcessBackend(2)

    def fn(index):
        time.sleep(jitter(index, seed))
        return ("result", index, index * 7 + seed % 11)

    try:
        results = backend.run_tasks(fn, count)
    finally:
        backend.close()
    assert results == [("result", index, index * 7 + seed % 11) for index in range(count)]


@given(count=st.integers(min_value=0, max_value=40))
@RELAXED
def test_serial_backend_is_the_reference(count):
    assert SerialBackend().run_tasks(lambda index: index * index, count) == [
        index * index for index in range(count)
    ]


@pytest.mark.skipif(
    not closure_transport_available(),
    reason="cloudpickle unavailable: closures cannot ship over TCP",
)
@given(
    count=st.integers(min_value=2, max_value=24),
    fail_after=st.integers(min_value=1, max_value=10),
    retries=st.integers(min_value=0, max_value=3),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_distributed_orders_and_folds_once_under_worker_loss(
    count, fail_after, retries, seed
):
    """Random failure point, random retry budget: submission order and
    exactly-once folding must survive a worker dropping mid-batch.

    The servers run in-process, so the task closure's side effects are
    visible here: every index runs at least once (retries may run one
    more than once — folding, not execution, is what is exactly-once).
    """
    flaky = WorkerServer(fault=FaultSpec("drop", fail_after)).start()
    healthy = WorkerServer().start()
    backend = DistributedBackend(
        (flaky.address, healthy.address),
        heartbeat_s=0.1,
        task_retries=retries,
        connect_timeout_s=2.0,
    )
    executed = []
    lock = threading.Lock()

    def fn(index):
        time.sleep(jitter(index, seed))
        with lock:
            executed.append(index)
        return ("result", index, index * 13 + 1)

    try:
        results = backend.run_tasks(fn, count)
    finally:
        backend.close()
        flaky.stop()
        healthy.stop()
    assert results == [("result", index, index * 13 + 1) for index in range(count)]
    assert set(executed) == set(range(count))
