"""Tests for the simulated HDFS and the Figure 11 loading-time model."""

import pytest

from repro.errors import ExecutionError
from repro.mapreduce.config import ClusterConfig
from repro.mapreduce.hdfs import DistributedFile, SimulatedHDFS
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.utils import GB, MB


@pytest.fixture
def hdfs():
    return SimulatedHDFS(ClusterConfig())


class TestDistributedFile:
    def test_size_accounting(self):
        file = DistributedFile("f", records=[1, 2, 3], record_width=100)
        assert file.size_bytes == 300
        assert file.num_records == 3

    def test_blocks(self):
        file = DistributedFile("f", records=list(range(10)), record_width=20 * MB)
        assert file.blocks(64 * MB) == 4  # 200MB / 64MB

    def test_empty_file_has_zero_blocks(self):
        file = DistributedFile("f", records=[], record_width=10)
        assert file.blocks(64 * MB) == 0

    def test_small_file_is_one_block(self):
        file = DistributedFile("f", records=[1], record_width=10)
        assert file.blocks(64 * MB) == 1


class TestNamespace:
    def test_put_get_delete(self, hdfs):
        file = DistributedFile("x", records=[1], record_width=8)
        hdfs.put(file)
        assert "x" in hdfs
        assert hdfs.get("x") is file
        hdfs.delete("x")
        assert "x" not in hdfs

    def test_get_missing_raises(self, hdfs):
        with pytest.raises(ExecutionError):
            hdfs.get("nope")

    def test_store_relation(self, hdfs):
        relation = Relation("R", Schema.of("a:int"), [(1,), (2,)])
        file = hdfs.store_relation(relation)
        assert file.num_records == 2
        assert file.size_bytes == relation.size_bytes


class TestLoadingTimes:
    """Figure 11's shape: plain < ours <= hive-ish, converging at scale."""

    def test_plain_upload_scales_linearly(self, hdfs):
        t1 = hdfs.plain_upload_time_s(1 * GB)
        t2 = hdfs.plain_upload_time_s(2 * GB)
        assert t2 == pytest.approx(2 * t1)

    def test_ours_slower_than_plain(self, hdfs):
        for size in (1 * GB, 100 * GB, 500 * GB):
            assert hdfs.our_load_time_s(size) > hdfs.plain_upload_time_s(size)

    def test_ours_comparable_to_hive_at_scale(self, hdfs):
        # The paper reports our loading is comparable to Hive for large
        # volumes; at 500GB the gap should be within 25%.
        size = 500 * GB
        ours = hdfs.our_load_time_s(size)
        hive = hdfs.hive_load_time_s(size)
        assert ours < hive * 1.25

    def test_replication_multiplies_upload(self):

        from repro.mapreduce.config import HadoopParameters

        config1 = ClusterConfig(hadoop=HadoopParameters(dfs_replication=1))
        config3 = ClusterConfig(hadoop=HadoopParameters(dfs_replication=3))
        t1 = SimulatedHDFS(config1).plain_upload_time_s(GB)
        t3 = SimulatedHDFS(config3).plain_upload_time_s(GB)
        assert t3 == pytest.approx(3 * t1)
