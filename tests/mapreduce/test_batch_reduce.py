"""Tests for the batched reduce phase of the runtime.

Mirrors ``test_batch_map.py``: a job whose ``batch_reducer`` reproduces
its scalar ``reducer`` must yield bit-identical outputs, counters, and
per-task costs through both paths, and the runtime must hand the batch
reducer the documented key-major layout (keys in bucket insertion order,
flat values, group offsets).
"""

import dataclasses

from repro.mapreduce.config import ClusterConfig
from repro.mapreduce.counters import JobMetrics
from repro.mapreduce.hdfs import DistributedFile
from repro.mapreduce.job import (
    MapReduceJobSpec,
    ReduceBatch,
    TaskContext,
)
from repro.mapreduce.runtime import SimulatedCluster


def make_spec(num_records=100, num_reducers=4, with_batch=True, input_bytes=False):
    """A counting job whose batch reducer mirrors its scalar reducer."""
    records = [f"rec-{i}" for i in range(num_records)]
    file = DistributedFile(name="in", records=records, record_width=64, tag="in")

    def mapper(tag, record, ctx):
        yield ctx.record_index % 7, record

    def reducer(key, values, ctx):
        ctx.charge_comparisons(len(values))
        yield (key, len(values))
        if len(values) > 10:
            yield (key, "big")

    def batch_reducer(keys, values, offsets):
        outputs = []
        comparisons = 0
        for g, key in enumerate(keys):
            count = offsets[g + 1] - offsets[g]
            comparisons += count
            outputs.append((key, count))
            if count > 10:
                outputs.append((key, "big"))
        extra = None
        if input_bytes:
            # The scalar path's per-value estimate, computed arithmetically:
            # every record is "rec-<i>" (4 + len bytes) plus the 12-byte
            # pair header.
            extra = sum(12 + 4 + len(v) for v in values)
        return ReduceBatch(outputs, comparisons, extra)

    return MapReduceJobSpec(
        name="batchy-reduce",
        inputs=[file],
        mapper=mapper,
        reducer=reducer,
        num_reducers=num_reducers,
        batch_reducer=batch_reducer if with_batch else None,
    )


def run_reduce(spec):
    cluster = SimulatedCluster(ClusterConfig())
    metrics = JobMetrics(job_name=spec.name)
    buckets, _ = cluster._run_map_phase(
        dataclasses.replace(spec, batch_reducer=None), metrics
    )
    outputs, costs = cluster._run_reduce_phase(spec, buckets, metrics)
    return outputs, costs, metrics


class TestBatchedReducePhase:
    def test_matches_scalar_path(self):
        batched_out, batched_costs, batched_metrics = run_reduce(make_spec())
        scalar_out, scalar_costs, scalar_metrics = run_reduce(
            make_spec(with_batch=False)
        )
        assert batched_out == scalar_out
        assert batched_costs == scalar_costs
        assert batched_metrics.reducer_input_bytes == scalar_metrics.reducer_input_bytes
        assert batched_metrics.reduce_comparisons == scalar_metrics.reduce_comparisons

    def test_precomputed_input_bytes_match_scalar(self):
        batched_out, batched_costs, batched_metrics = run_reduce(
            make_spec(input_bytes=True)
        )
        scalar_out, scalar_costs, scalar_metrics = run_reduce(
            make_spec(with_batch=False)
        )
        assert batched_out == scalar_out
        assert batched_costs == scalar_costs
        assert batched_metrics.reducer_input_bytes == scalar_metrics.reducer_input_bytes

    def test_key_major_layout(self, monkeypatch):
        """The runtime must flatten each bucket key-major: keys in bucket
        insertion order, one contiguous value span per key.

        Observes the reducer's calls through a parent-side list, which
        only works in-process — pin the serial backend so the test stays
        valid under a ``REPRO_EXEC_BACKEND=process`` run of the suite.
        """
        monkeypatch.setenv("REPRO_EXEC_BACKEND", "serial")
        seen = []

        def recording_reducer(keys, values, offsets):
            assert len(offsets) == len(keys) + 1
            assert offsets[0] == 0 and offsets[-1] == len(values)
            seen.append(
                {
                    key: list(values[offsets[g] : offsets[g + 1]])
                    for g, key in enumerate(keys)
                }
            )
            return ReduceBatch([], 0)

        spec = dataclasses.replace(make_spec(), batch_reducer=recording_reducer)
        cluster = SimulatedCluster(ClusterConfig())
        metrics = JobMetrics(job_name=spec.name)
        buckets, _ = cluster._run_map_phase(
            dataclasses.replace(spec, batch_mapper=None, batch_reducer=None), metrics
        )
        cluster._run_reduce_phase(spec, buckets, metrics)
        assert seen == [
            {key: values for key, values in bucket.items()} for bucket in buckets
        ]
        for batch_view, bucket in zip(seen, buckets):
            assert list(batch_view) == list(bucket)  # key order too

    def test_full_job_identical_result(self):
        cluster = SimulatedCluster(ClusterConfig())
        batched = cluster.run_job(make_spec())
        scalar = SimulatedCluster(ClusterConfig()).run_job(make_spec(with_batch=False))
        assert batched.output.records == scalar.output.records
        assert batched.metrics.total_time_s == scalar.metrics.total_time_s
        assert batched.metrics.reduce_time_s == scalar.metrics.reduce_time_s
        assert (
            batched.metrics.reducer_input_bytes == scalar.metrics.reducer_input_bytes
        )

    def test_scalar_reducer_still_runs_without_batch(self):
        outputs, costs, metrics = run_reduce(make_spec(with_batch=False))
        assert outputs and costs
        assert metrics.reduce_comparisons > 0

    def test_task_context_unused_by_batch_path(self):
        """The batched path accounts comparisons through ReduceBatch, not
        TaskContext; a stray context must not leak across buckets."""
        ctx = TaskContext()
        assert ctx.comparisons == 0
        _, _, metrics = run_reduce(make_spec())
        assert ctx.comparisons == 0
        assert metrics.reduce_comparisons == 100  # one per input record
