"""Fault injection for the distributed backend: lose workers, keep bits.

The coordinator's contract is that worker loss is invisible in the
output: tasks from a dead or frozen worker are retried on the survivors
(or, with nobody left, run locally), results fold exactly once per index
in index order, and the final digest of a real query grid entry stays
bit-identical to the serial reference — *including* a run where a worker
daemon is killed mid-phase (the acceptance scenario).

Worker daemons are real subprocesses armed with the test-only
``--fail-after-tasks N --fail-mode kill|stall`` flags of
``repro worker serve``: ``kill`` exits the process the way a crashed
host would (sockets die instantly), ``stall`` freezes every handler
including heartbeats the way a hung host would (only the heartbeat
thread can notice).
"""

import pytest

import conformance
from repro.mapreduce.backend import DistributedBackend, close_backends
from repro.mapreduce.wire import closure_transport_available

pytestmark = pytest.mark.skipif(
    not closure_transport_available(),
    reason="cloudpickle unavailable: closures cannot ship over TCP",
)

#: Heartbeat fast enough that stall detection doesn't dominate test time.
FAST_HEARTBEAT = 0.2


@pytest.fixture(autouse=True)
def _shutdown_pools():
    yield
    close_backends()


def make_backend(addrs, **overrides):
    kwargs = dict(heartbeat_s=FAST_HEARTBEAT, task_retries=2, connect_timeout_s=2.0)
    kwargs.update(overrides)
    return DistributedBackend(tuple(addrs), **kwargs)


class TestTaskLevelRetry:
    def test_kill_mid_batch_retries_on_survivor(self):
        """One worker dies after its 3rd task; every index still comes
        back exactly once, in order, computed correctly."""
        table = {"scale": 3}

        def fn(index):
            return index * table["scale"] + 1

        with conformance.worker_pool(
            2, extra_args=[("--fail-after-tasks", "3", "--fail-mode", "kill"), ()]
        ) as addrs:
            backend = make_backend(addrs)
            try:
                results = backend.run_tasks(fn, 24)
                assert results == [fn(index) for index in range(24)]
                handles = backend._handles
                assert handles[addrs[0]].dead.is_set(), "flaky worker not marked dead"
                assert handles[addrs[1]].alive, "survivor should stay connected"
                # Everything resolved remotely: the survivor absorbed the
                # dead worker's queue, no local fallback was needed.
                assert not backend._noted_degraded
            finally:
                backend.close()

    def test_stall_mid_batch_detected_by_heartbeat(self):
        """A frozen worker answers nothing — not even heartbeats; the
        coordinator must notice via the ping thread and move on."""
        with conformance.worker_pool(
            2, extra_args=[("--fail-after-tasks", "2", "--fail-mode", "stall"), ()]
        ) as addrs:
            backend = make_backend(addrs)
            try:
                results = backend.run_tasks(lambda index: index * index, 16)
                assert results == [index * index for index in range(16)]
                assert backend._handles[addrs[0]].dead.is_set()
            finally:
                backend.close()

    def test_all_workers_dead_falls_back_locally(self):
        """With every worker gone mid-batch the leftovers run locally —
        still exactly once per index, still in order."""
        with conformance.worker_pool(
            2,
            extra_args=[
                ("--fail-after-tasks", "2", "--fail-mode", "kill"),
                ("--fail-after-tasks", "2", "--fail-mode", "kill"),
            ],
        ) as addrs:
            backend = make_backend(addrs)
            try:
                results = backend.run_tasks(lambda index: index + 100, 12)
                assert results == [index + 100 for index in range(12)]
                assert backend._noted_degraded  # local fallback happened
            finally:
                backend.close()

    def test_no_workers_at_all_degrades_to_serial(self):
        backend = make_backend(("127.0.0.1:1",), connect_timeout_s=0.2)
        try:
            assert backend.run_tasks(lambda index: index, 5) == list(range(5))
            assert backend._noted_degraded
        finally:
            backend.close()

    def test_restarted_daemon_rejoins_after_backoff(self):
        """A worker restarted on the same host:port must rejoin a
        long-lived coordinator (redial with backoff), not be blacklisted
        for the process lifetime."""
        from repro.mapreduce.worker import WorkerServer

        first = WorkerServer().start()
        port = first.port
        steady = WorkerServer().start()
        backend = make_backend((first.address, steady.address))
        try:
            assert backend.run_tasks(lambda i: i, 4) == [0, 1, 2, 3]
            first.stop()  # the host goes away...
            assert backend.run_tasks(lambda i: i * 2, 4) == [0, 2, 4, 6]
            restarted = WorkerServer(port=port).start()  # ...and comes back
            try:
                for _ in range(6):  # backoff: rejoin within a few batches
                    backend.run_tasks(lambda i: i, 3)
                    handle = backend._handles.get(restarted.address)
                    if handle is not None and handle.alive:
                        break
                handle = backend._handles.get(restarted.address)
                assert handle is not None and handle.alive, (
                    "restarted daemon never rejoined the pool"
                )
            finally:
                restarted.stop()
        finally:
            backend.close()
            steady.stop()

    def test_task_exception_propagates_not_retried(self):
        """A task that *raises* is a result, not a worker fault: the
        exception re-raises at the coordinator with its real type."""
        def boom(index):
            if index == 2:
                raise ValueError("task 2 exploded")
            return index

        with conformance.worker_pool(1) as addrs:
            backend = make_backend(addrs)
            try:
                with pytest.raises(ValueError, match="task 2 exploded"):
                    backend.run_tasks(boom, 6)
            finally:
                backend.close()


class TestMidPhaseKillEquivalence:
    """The acceptance scenario: a full grid entry, bit-identical to
    serial, while a worker daemon dies mid-phase."""

    @pytest.mark.parametrize("query_id", ["mobile-2", "tpch-3"])
    def test_grid_entry_with_mid_phase_kill(self, query_id):
        # Task counting is global across the daemon's connections, so
        # "after 5 tasks" lands mid map- or reduce-phase of the first
        # planner's first job — well inside the grid entry's execution.
        with conformance.worker_pool(
            2, extra_args=[("--fail-after-tasks", "5", "--fail-mode", "kill"), ()]
        ) as addrs:
            conformance.assert_backend_matches_serial(
                "distributed",
                query_id,
                workers_addrs=addrs,
                REPRO_WORKER_HEARTBEAT_S=FAST_HEARTBEAT,
            )

    def test_grid_entry_with_mid_phase_stall(self):
        with conformance.worker_pool(
            2, extra_args=[("--fail-after-tasks", "4", "--fail-mode", "stall"), ()]
        ) as addrs:
            conformance.assert_backend_matches_serial(
                "distributed",
                "mobile-1",
                workers_addrs=addrs,
                REPRO_WORKER_HEARTBEAT_S=FAST_HEARTBEAT,
            )
