"""Cancellation-safety invariants of the cooperative token machinery.

The serve layer's promise is that *whenever* a query dies — explicit
cancel, expired deadline, at any point in a batch, with or without a
worker dying at the same time — the backend is left clean:

* in-flight task accounting returns to exactly zero (nothing leaks);
* the fleet stays usable — the very next batch on the same backend
  instance completes with bit-identical, index-ordered results.

Hypothesis drives the cancel point and task-duration skew; the
distributed cases run real in-process :class:`WorkerServer` daemons.
The module skips when hypothesis is not installed.
"""

import threading
import time

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.errors import DeadlineExceeded, QueryCancelled  # noqa: E402
from repro.mapreduce.backend import DistributedBackend  # noqa: E402
from repro.mapreduce.cancel import (  # noqa: E402
    CancellationToken,
    cancel_scope,
    check_cancelled,
    current_token,
)
from repro.mapreduce.wire import closure_transport_available  # noqa: E402
from repro.mapreduce.worker import FaultSpec, WorkerServer  # noqa: E402

needs_closures = pytest.mark.skipif(
    not closure_transport_available(),
    reason="cloudpickle unavailable: closures cannot ship over TCP",
)


# ----------------------------------------------------------------------
# token semantics (plain unit tests)
# ----------------------------------------------------------------------


class TestCancellationToken:
    def test_unfired_token_is_silent(self):
        token = CancellationToken()
        assert token.fired() is None
        token.check()  # no raise

    def test_cancel_raises_query_cancelled(self):
        token = CancellationToken(label="q7")
        token.cancel("operator said so")
        assert token.fired() == "cancelled"
        with pytest.raises(QueryCancelled, match="operator said so"):
            token.check()

    def test_first_cancel_reason_wins(self):
        token = CancellationToken()
        token.cancel("first")
        token.cancel("second")
        with pytest.raises(QueryCancelled, match="first"):
            token.check()

    def test_deadline_fires_and_raises(self):
        token = CancellationToken(deadline_s=0.005)
        time.sleep(0.02)
        assert token.fired() == "deadline"
        with pytest.raises(DeadlineExceeded):
            token.check()

    def test_cancel_outranks_expired_deadline(self):
        token = CancellationToken(deadline_s=0.001)
        time.sleep(0.01)
        token.cancel()
        assert token.fired() == "cancelled"

    def test_scope_is_thread_local_and_reentrant(self):
        outer = CancellationToken(label="outer")
        inner = CancellationToken(label="inner")
        assert current_token() is None
        with cancel_scope(outer):
            assert current_token() is outer
            with cancel_scope(inner):
                assert current_token() is inner
            assert current_token() is outer
            seen = []
            worker = threading.Thread(target=lambda: seen.append(current_token()))
            worker.start()
            worker.join()
            # Pool/dispatcher threads must NOT inherit the session token.
            assert seen == [None]
        assert current_token() is None

    def test_check_cancelled_is_noop_without_scope(self):
        check_cancelled()  # must never raise outside a scope


# ----------------------------------------------------------------------
# property: random cancel points leave the backend clean and usable
# ----------------------------------------------------------------------


def _jitter(index: int, seed: int) -> float:
    return ((index * 2654435761 + seed) % 7) * 0.0005


def _run_cancelled_batch(backend, count, seed, cancel_after_s):
    """One batch under a token cancelled from a timer thread; returns the
    outcome kind ('completed' | 'cancelled')."""
    token = CancellationToken(label="prop")
    timer = threading.Timer(cancel_after_s, token.cancel)
    timer.start()

    def fn(index):
        time.sleep(_jitter(index, seed))
        return ("result", index)

    try:
        with cancel_scope(token):
            results = backend.run_tasks(fn, count)
    except QueryCancelled:
        return "cancelled"
    finally:
        timer.cancel()
    assert results == [("result", index) for index in range(count)]
    return "completed"


@needs_closures
@given(
    count=st.integers(min_value=2, max_value=30),
    seed=st.integers(min_value=0, max_value=2**31),
    cancel_after_ms=st.integers(min_value=0, max_value=25),
)
@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_random_cancel_points_leave_no_inflight_and_survivors_usable(
    count, seed, cancel_after_ms
):
    workers = [WorkerServer().start(), WorkerServer().start()]
    backend = DistributedBackend(
        tuple(w.address for w in workers),
        heartbeat_s=0.1,
        task_retries=2,
        connect_timeout_s=2.0,
    )
    try:
        _run_cancelled_batch(backend, count, seed, cancel_after_ms / 1000.0)
        # Invariant 1: nothing is left on the wire, whether the batch
        # completed, was abandoned mid-flight, or never started.
        assert backend.tasks_in_flight == 0
        # Invariant 2: the fleet is immediately usable for the next
        # query — full, ordered, bit-identical results, no token.
        follow_up = backend.run_tasks(lambda index: index * 17 + 1, count)
        assert follow_up == [index * 17 + 1 for index in range(count)]
        assert backend.tasks_in_flight == 0
    finally:
        backend.close()
        for worker in workers:
            worker.stop()


@needs_closures
@given(
    count=st.integers(min_value=4, max_value=24),
    seed=st.integers(min_value=0, max_value=2**31),
    fail_after=st.integers(min_value=1, max_value=6),
    cancel_after_ms=st.integers(min_value=0, max_value=20),
)
@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_cancel_racing_worker_loss_still_leaves_zero_inflight(
    count, seed, fail_after, cancel_after_ms
):
    """The worst race: a worker drops its connections *while* the query
    is being cancelled.  Whatever interleaving happens, accounting must
    return to zero and the survivor must serve the next batch."""
    flaky = WorkerServer(fault=FaultSpec("drop", fail_after)).start()
    healthy = WorkerServer().start()
    backend = DistributedBackend(
        (flaky.address, healthy.address),
        heartbeat_s=0.1,
        task_retries=1,
        connect_timeout_s=2.0,
    )
    try:
        _run_cancelled_batch(backend, count, seed, cancel_after_ms / 1000.0)
        assert backend.tasks_in_flight == 0
        follow_up = backend.run_tasks(lambda index: ("ok", index), count)
        assert follow_up == [("ok", index) for index in range(count)]
        assert backend.tasks_in_flight == 0
    finally:
        backend.close()
        flaky.stop()
        healthy.stop()


@needs_closures
def test_expired_deadline_abandons_instead_of_retrying():
    """A dead-by-deadline query must not burn the fleet's retry budget:
    after the token fires, lost/undone indices are abandoned and the
    batch raises ``DeadlineExceeded`` instead of falling back locally."""
    worker = WorkerServer().start()
    backend = DistributedBackend(
        (worker.address,), heartbeat_s=0.1, task_retries=5, connect_timeout_s=2.0
    )

    def slow(index):
        time.sleep(0.05)
        return index

    token = CancellationToken(deadline_s=0.08, label="expiring")
    try:
        started = time.monotonic()
        with cancel_scope(token):
            with pytest.raises(DeadlineExceeded):
                backend.run_tasks(slow, 40)
        elapsed = time.monotonic() - started
        assert backend.tasks_in_flight == 0
        # Abandoned, not retried-to-completion: 40 tasks x 50ms on one
        # worker would take ~2s serially; a dead-by-deadline batch must
        # bail out within a couple of dispatcher poll intervals instead.
        assert elapsed < 1.0
    finally:
        backend.close()
        worker.stop()
