"""Tests for the batched (and shard-parallel) map phase of the runtime."""

import dataclasses

import pytest

from repro.errors import ExecutionError
from repro.mapreduce.config import ClusterConfig
from repro.mapreduce.counters import JobMetrics
from repro.mapreduce.hdfs import DistributedFile
from repro.mapreduce.job import MapBatch, MapReduceJobSpec, default_partitioner
from repro.mapreduce.runtime import SimulatedCluster, map_shard_count


def make_spec(num_records=100, num_reducers=4, with_batch=True):
    """A word-count-ish job whose batch mapper mirrors its scalar mapper."""
    records = [f"rec-{i}" for i in range(num_records)]
    file = DistributedFile(name="in", records=records, record_width=64, tag="in")

    def mapper(tag, record, ctx):
        yield ctx.record_index % 7, record

    def reducer(key, values, ctx):
        yield (key, len(values))

    def batch_mapper(tag, records, base_index):
        buckets = [{} for _ in range(num_reducers)]
        for offset, record in enumerate(records):
            key = (base_index + offset) % 7
            bucket = buckets[default_partitioner(key, num_reducers)]
            bucket.setdefault(key, []).append(record)
        pair_bytes = sum(12 + 4 + len(r) for r in records)
        return MapBatch(buckets, len(records), pair_bytes)

    return MapReduceJobSpec(
        name="batchy",
        inputs=[file],
        mapper=mapper,
        reducer=reducer,
        num_reducers=num_reducers,
        batch_mapper=batch_mapper if with_batch else None,
    )


def run_map(spec):
    cluster = SimulatedCluster(ClusterConfig())
    metrics = JobMetrics(job_name=spec.name)
    buckets, _ = cluster._run_map_phase(spec, metrics)
    return buckets, metrics


class TestBatchedMapPhase:
    def test_matches_scalar_path(self):
        batched_buckets, batched_metrics = run_map(make_spec())
        scalar_buckets, scalar_metrics = run_map(make_spec(with_batch=False))
        assert batched_buckets == scalar_buckets
        for batched, scalar in zip(batched_buckets, scalar_buckets):
            assert list(batched) == list(scalar)  # key insertion order too
        assert batched_metrics.map_output_records == scalar_metrics.map_output_records
        assert batched_metrics.map_output_bytes == scalar_metrics.map_output_bytes
        assert batched_metrics.shuffle_bytes == scalar_metrics.shuffle_bytes

    def test_sharded_matches_serial(self, monkeypatch):
        serial_buckets, serial_metrics = run_map(make_spec())
        monkeypatch.setenv("REPRO_MAP_SHARDS", "3")
        assert map_shard_count() == 3
        sharded_buckets, sharded_metrics = run_map(make_spec())
        assert sharded_buckets == serial_buckets
        for sharded, serial in zip(sharded_buckets, serial_buckets):
            assert list(sharded) == list(serial)
        assert sharded_metrics.shuffle_bytes == serial_metrics.shuffle_bytes

    def test_shard_count_parses_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAP_SHARDS", "nope")
        assert map_shard_count() == 1
        monkeypatch.setenv("REPRO_MAP_SHARDS", "-5")
        assert map_shard_count() == 1

    def test_wrong_bucket_count_raises(self):
        spec = make_spec()
        bad = dataclasses.replace(
            spec,
            batch_mapper=lambda tag, records, base: MapBatch([{}], 0, 0),
        )
        with pytest.raises(ExecutionError, match="buckets"):
            run_map(bad)

    def test_full_job_identical_result(self):
        cluster = SimulatedCluster(ClusterConfig())
        batched = cluster.run_job(make_spec())
        scalar = SimulatedCluster(ClusterConfig()).run_job(make_spec(with_batch=False))
        assert batched.output.records == scalar.output.records
        assert batched.metrics.total_time_s == scalar.metrics.total_time_s
        assert batched.metrics.shuffle_bytes == scalar.metrics.shuffle_bytes
