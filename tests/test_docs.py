"""Documentation-consistency guards.

DESIGN.md maps paper pieces to modules and benchmarks; README.md lists
examples.  These tests keep those maps honest: every referenced file
must exist, and every example/benchmark must be documented.
"""

import re
from pathlib import Path

ROOT = Path(__file__).parent.parent


def read(name: str) -> str:
    return (ROOT / name).read_text(encoding="utf-8")


class TestDesignReferences:
    def test_referenced_modules_exist(self):
        """Every `repro/...py` path in DESIGN.md points at a real file."""
        text = read("DESIGN.md")
        missing = []
        for match in re.finditer(r"`(repro/[\w/]+\.py)", text):
            path = ROOT / "src" / match.group(1)
            if not path.exists():
                missing.append(match.group(1))
        assert not missing, missing

    def test_referenced_benchmarks_exist(self):
        text = read("DESIGN.md")
        missing = []
        for match in re.finditer(r"`(benchmarks/test_[\w]+\.py)`", text):
            if not (ROOT / match.group(1)).exists():
                missing.append(match.group(1))
        assert not missing, missing

    def test_referenced_tests_exist(self):
        text = read("DESIGN.md")
        missing = []
        for match in re.finditer(r"`(tests/[\w/]+\.py)`", text):
            if not (ROOT / match.group(1)).exists():
                missing.append(match.group(1))
        assert not missing, missing

    def test_every_figure_benchmark_is_indexed(self):
        """Each benchmarks/test_fig*/table* file appears in DESIGN.md."""
        text = read("DESIGN.md")
        undocumented = []
        for path in sorted((ROOT / "benchmarks").glob("test_*.py")):
            if path.name not in text:
                undocumented.append(path.name)
        assert not undocumented, undocumented


class TestReadmeReferences:
    def test_example_table_matches_directory(self):
        text = read("README.md")
        on_disk = {p.name for p in (ROOT / "examples").glob("*.py")}
        documented = set(re.findall(r"`examples/([\w]+\.py)`", text))
        assert documented == on_disk

    def test_architecture_mentions_every_package(self):
        text = read("README.md")
        packages = {
            p.name
            for p in (ROOT / "src" / "repro").iterdir()
            if p.is_dir() and (p / "__init__.py").exists()
        }
        for package in packages:
            assert f"{package}/" in text, f"README architecture misses {package}/"


class TestExperimentsReferences:
    def test_result_files_come_from_real_benchmarks(self):
        """Every results file named in EXPERIMENTS.md is produced by some
        benchmark (its stem appears in a benchmark source)."""
        text = read("EXPERIMENTS.md")
        sources = "".join(
            p.read_text(encoding="utf-8")
            for p in (ROOT / "benchmarks").glob("*.py")
        )
        for name in set(re.findall(r"`(\w+\.txt)`", text)):
            assert name in sources, f"{name} not emitted by any benchmark"

    def test_every_paper_figure_covered(self):
        """Figures 1, 4-13 and Tables 1-3 all appear in EXPERIMENTS.md."""
        text = read("EXPERIMENTS.md")
        for figure in [1, 5, 6, 7, 8, 9, 10, 11, 12, 13]:
            assert re.search(rf"Fig(?:ure|\.) {figure}[ab]?\b", text), figure
        for table in [1, 2, 3]:
            assert re.search(rf"Table {table}\b", text), table
