"""Correctness tests for the physical join operators against the oracle.

Every operator must produce exactly the reference join result — no
missing combinations, no duplicates — across equality, inequality, and
mixed conditions, including offsets.  A hypothesis property generates
random two-relation theta joins and checks the hypercube operator.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partitioner import HypercubePartitioner, RandomPartitioner
from repro.errors import ExecutionError
from repro.joins.jobs import (
    find_single_key_class,
    make_broadcast_join_job,
    make_equi_join_job,
    make_equichain_join_job,
    make_hypercube_join_job,
)
from repro.joins.records import relation_to_composite_file
from repro.joins.reference import join_result_signature, reference_join
from repro.mapreduce.runtime import SimulatedCluster
from repro.relational.predicates import JoinCondition
from repro.relational.query import JoinQuery
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.utils import make_rng


def rel(name: str, rows: int, hi: int = 40, groups: int = 4, seed: int = 0) -> Relation:
    rng = make_rng("joins-test", name, rows, seed)
    return Relation(
        name,
        Schema.of("id:int", "v:int", "g:int"),
        [(i, rng.randint(0, hi - 1), rng.randint(0, groups - 1)) for i in range(rows)],
    )


def run_hypercube(query: JoinQuery, num_components: int = 6):
    cluster = SimulatedCluster()
    aliases = sorted(query.relations)
    files = [
        cluster.hdfs.put(
            relation_to_composite_file(query.relations[a], a, file_name=f"f:{a}")
        )
        for a in aliases
    ]
    partitioner = HypercubePartitioner([f.num_records for f in files], num_components)
    schemas = {a: query.relations[a].schema for a in aliases}
    spec = make_hypercube_join_job(
        "hc", files, [(a,) for a in aliases], partitioner, query.conditions, schemas
    )
    return cluster.run_job(spec)


class TestHypercubeJoin:
    @pytest.mark.parametrize("k", [1, 2, 5, 9])
    def test_matches_reference_any_k(self, k):
        query = JoinQuery(
            "q",
            {"a": rel("A", 25), "b": rel("B", 20, seed=1)},
            [JoinCondition.parse(1, "a.v < b.v")],
        )
        result = run_hypercube(query, k)
        assert join_result_signature(result.output.records) == join_result_signature(
            reference_join(query)
        )

    def test_three_way_chain(self):
        query = JoinQuery(
            "q",
            {"a": rel("A", 18), "b": rel("B", 16, seed=1), "c": rel("C", 14, seed=2)},
            [
                JoinCondition.parse(1, "a.v <= b.v"),
                JoinCondition.parse(2, "b.g = c.g"),
            ],
        )
        result = run_hypercube(query, 7)
        assert join_result_signature(result.output.records) == join_result_signature(
            reference_join(query)
        )

    def test_cyclic_conditions(self):
        query = JoinQuery(
            "q",
            {"a": rel("A", 14), "b": rel("B", 13, seed=1), "c": rel("C", 12, seed=2)},
            [
                JoinCondition.parse(1, "a.v < b.v"),
                JoinCondition.parse(2, "b.v < c.v"),
                JoinCondition.parse(3, "a.v + 15 > c.v"),
            ],
        )
        result = run_hypercube(query, 5)
        assert join_result_signature(result.output.records) == join_result_signature(
            reference_join(query)
        )

    def test_ne_condition(self):
        query = JoinQuery(
            "q",
            {"a": rel("A", 15), "b": rel("B", 12, seed=3)},
            [JoinCondition.parse(1, "a.g != b.g")],
        )
        result = run_hypercube(query, 4)
        assert join_result_signature(result.output.records) == join_result_signature(
            reference_join(query)
        )

    def test_input_validation(self):
        a, b = rel("A", 10), rel("B", 10, seed=1)
        cluster = SimulatedCluster()
        fa = relation_to_composite_file(a, "a")
        fb = relation_to_composite_file(b, "b")
        part = HypercubePartitioner([10, 99], 2)  # wrong cardinality
        with pytest.raises(ExecutionError):
            make_hypercube_join_job(
                "bad", [fa, fb], [("a",), ("b",)], part,
                [JoinCondition.parse(1, "a.v < b.v")],
                {"a": a.schema, "b": b.schema},
            )

    @given(
        st.sampled_from(["<", "<=", "=", ">=", ">", "!="]),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_random_theta_joins(self, op, k, seed):
        a = rel("PA", 12, hi=10, seed=seed)
        b = rel("PB", 11, hi=10, seed=seed + 1)
        query = JoinQuery(
            "pq", {"a": a, "b": b}, [JoinCondition.parse(1, f"a.v {op} b.v")]
        )
        result = run_hypercube(query, k)
        assert join_result_signature(result.output.records) == join_result_signature(
            reference_join(query)
        )

    def test_random_partitioner_also_exact(self):
        """Partition quality affects cost, never correctness."""
        query = JoinQuery(
            "q",
            {"a": rel("A", 20), "b": rel("B", 18, seed=1)},
            [JoinCondition.parse(1, "a.v >= b.v")],
        )
        cluster = SimulatedCluster()
        files = [
            cluster.hdfs.put(relation_to_composite_file(query.relations[x], x))
            for x in ("a", "b")
        ]
        partitioner = RandomPartitioner([20, 18], 6)
        spec = make_hypercube_join_job(
            "rc", files, [("a",), ("b",)], partitioner, query.conditions,
            {x: query.relations[x].schema for x in ("a", "b")},
        )
        result = cluster.run_job(spec)
        assert join_result_signature(result.output.records) == join_result_signature(
            reference_join(query)
        )


class TestEquiJoin:
    def test_matches_reference(self):
        query = JoinQuery(
            "q",
            {"a": rel("A", 30), "b": rel("B", 25, seed=1)},
            [JoinCondition.parse(1, "a.g = b.g")],
        )
        cluster = SimulatedCluster()
        fa = cluster.hdfs.put(relation_to_composite_file(query.relations["a"], "a"))
        fb = cluster.hdfs.put(relation_to_composite_file(query.relations["b"], "b"))
        spec = make_equi_join_job(
            "eq", fa, fb, query.conditions,
            {"a": query.relations["a"].schema, "b": query.relations["b"].schema},
            num_reducers=4,
        )
        result = cluster.run_job(spec)
        assert join_result_signature(result.output.records) == join_result_signature(
            reference_join(query)
        )

    def test_residual_theta_filter(self):
        query = JoinQuery(
            "q",
            {"a": rel("A", 25), "b": rel("B", 25, seed=1)},
            [JoinCondition.parse(1, "a.g = b.g", "a.v < b.v")],
        )
        cluster = SimulatedCluster()
        fa = cluster.hdfs.put(relation_to_composite_file(query.relations["a"], "a"))
        fb = cluster.hdfs.put(relation_to_composite_file(query.relations["b"], "b"))
        spec = make_equi_join_job(
            "eqr", fa, fb, query.conditions,
            {x: query.relations[x].schema for x in ("a", "b")},
            num_reducers=4,
        )
        result = cluster.run_job(spec)
        assert join_result_signature(result.output.records) == join_result_signature(
            reference_join(query)
        )

    def test_requires_equality_key(self):
        a, b = rel("A", 5), rel("B", 5, seed=1)
        fa = relation_to_composite_file(a, "a")
        fb = relation_to_composite_file(b, "b")
        with pytest.raises(ExecutionError):
            make_equi_join_job(
                "noeq", fa, fb, [JoinCondition.parse(1, "a.v < b.v")],
                {"a": a.schema, "b": b.schema}, num_reducers=2,
            )


class TestBroadcastJoin:
    def test_matches_reference(self):
        query = JoinQuery(
            "q",
            {"a": rel("A", 22), "b": rel("B", 9, seed=1)},
            [JoinCondition.parse(1, "a.v > b.v")],
        )
        cluster = SimulatedCluster()
        fa = cluster.hdfs.put(relation_to_composite_file(query.relations["a"], "a"))
        fb = cluster.hdfs.put(relation_to_composite_file(query.relations["b"], "b"))
        spec = make_broadcast_join_job(
            "bc", fa, fb, query.conditions,
            {x: query.relations[x].schema for x in ("a", "b")},
            num_reducers=5,
        )
        result = cluster.run_job(spec)
        assert join_result_signature(result.output.records) == join_result_signature(
            reference_join(query)
        )

    def test_small_side_replicated(self):
        a, b = rel("A", 40), rel("B", 5, seed=1)
        cluster = SimulatedCluster()
        fa = cluster.hdfs.put(relation_to_composite_file(a, "a"))
        fb = cluster.hdfs.put(relation_to_composite_file(b, "b"))
        spec = make_broadcast_join_job(
            "bc2", fa, fb, [JoinCondition.parse(1, "a.v > b.v")],
            {"a": a.schema, "b": b.schema}, num_reducers=8,
        )
        metrics = cluster.run_job(spec).metrics
        # 40 big records once + 5 small records x 8 reducers.
        assert metrics.map_output_records == 40 + 5 * 8


class TestEquichainJoin:
    def test_three_inputs_one_key_class(self):
        query = JoinQuery(
            "q",
            {
                "a": rel("A", 20),
                "b": rel("B", 18, seed=1),
                "c": rel("C", 16, seed=2),
            },
            [
                JoinCondition.parse(1, "a.g = b.g"),
                JoinCondition.parse(2, "b.g = c.g", "b.v <= c.v"),
            ],
        )
        cluster = SimulatedCluster()
        files = [
            cluster.hdfs.put(relation_to_composite_file(query.relations[x], x))
            for x in ("a", "b", "c")
        ]
        spec = make_equichain_join_job(
            "ec", files, query.conditions,
            {x: query.relations[x].schema for x in ("a", "b", "c")},
            num_reducers=4,
        )
        result = cluster.run_job(spec)
        assert join_result_signature(result.output.records) == join_result_signature(
            reference_join(query)
        )

    def test_rejects_disjoint_key_classes(self):
        a, b, c = rel("A", 5), rel("B", 5, seed=1), rel("C", 5, seed=2)
        files = [
            relation_to_composite_file(a, "a"),
            relation_to_composite_file(b, "b"),
            relation_to_composite_file(c, "c"),
        ]
        conditions = [
            JoinCondition.parse(1, "a.g = b.g"),
            JoinCondition.parse(2, "b.v < c.v"),  # no key reaching c
        ]
        with pytest.raises(ExecutionError):
            make_equichain_join_job(
                "bad", files, conditions,
                {"a": a.schema, "b": b.schema, "c": c.schema}, num_reducers=2,
            )


class TestFindSingleKeyClass:
    def test_transitive_class_found(self):
        conditions = [
            JoinCondition.parse(1, "a.g = b.g"),
            JoinCondition.parse(2, "b.g = c.g"),
        ]
        refs = find_single_key_class(conditions, [("a",), ("b",), ("c",)])
        assert refs is not None
        assert set(refs) == {"a", "b", "c"}

    def test_none_when_class_does_not_cover(self):
        conditions = [
            JoinCondition.parse(1, "a.g = b.g"),
            JoinCondition.parse(2, "b.v < c.v"),
        ]
        assert find_single_key_class(conditions, [("a",), ("b",), ("c",)]) is None

    def test_none_without_equalities(self):
        conditions = [JoinCondition.parse(1, "a.v < b.v")]
        assert find_single_key_class(conditions, [("a",), ("b",)]) is None

    def test_offset_equality_not_a_key(self):
        conditions = [JoinCondition.parse(1, "a.v + 1 = b.v")]
        assert find_single_key_class(conditions, [("a",), ("b",)]) is None

    def test_intermediate_alias_groups(self):
        conditions = [
            JoinCondition.parse(1, "a.g = b.g"),
            JoinCondition.parse(2, "b.g = c.g"),
        ]
        refs = find_single_key_class(conditions, [("a", "b"), ("c",)])
        assert refs is not None
