"""Tests for the Afrati-Ullman share-based multi-way equi-join."""

import pytest

from repro.errors import PlanningError
from repro.joins.records import relation_to_composite_file
from repro.joins.reference import join_result_signature, reference_join
from repro.joins.shares import (
    attribute_classes,
    make_shares_join_job,
    optimize_shares,
)
from repro.mapreduce.runtime import SimulatedCluster
from repro.relational.predicates import JoinCondition
from repro.relational.query import JoinQuery
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.utils import make_rng


def rel(name, rows, seed=0, groups=5):
    rng = make_rng("shares-test", name, seed)
    return Relation(
        name,
        Schema.of("id:int", "x:int", "y:int"),
        [
            (i, rng.randint(0, groups - 1), rng.randint(0, groups - 1))
            for i in range(rows)
        ],
    )


def chain_equi_query(rows=18):
    """R(a) x=x S(b) y=y T(c): two attribute classes."""
    return JoinQuery(
        "shares-chain",
        {"a": rel("A", rows), "b": rel("B", rows, seed=1), "c": rel("C", rows, seed=2)},
        [
            JoinCondition.parse(1, "a.x = b.x"),
            JoinCondition.parse(2, "b.y = c.y"),
        ],
    )


class TestAttributeClasses:
    def test_chain_has_two_classes(self):
        classes = attribute_classes(list(chain_equi_query().conditions))
        assert len(classes) == 2

    def test_transitive_equality_single_class(self):
        conditions = [
            JoinCondition.parse(1, "a.x = b.x"),
            JoinCondition.parse(2, "b.x = c.x"),
        ]
        classes = attribute_classes(conditions)
        assert len(classes) == 1
        assert set(classes[0]) == {"a", "b", "c"}

    def test_theta_rejected(self):
        with pytest.raises(PlanningError):
            attribute_classes([JoinCondition.parse(1, "a.x < b.x")])


class TestOptimizeShares:
    def test_product_within_budget(self):
        classes = attribute_classes(list(chain_equi_query().conditions))
        shares = optimize_shares({"a": 100, "b": 100, "c": 100}, classes, 16)
        product = 1
        for share in shares:
            product *= share
        assert product <= 16

    def test_big_relation_gets_protected(self):
        """The dominant relation should be replicated least: the classes
        it misses keep share 1 when it dwarfs the others."""
        classes = attribute_classes(list(chain_equi_query().conditions))
        # 'a' participates in class x only; giving class y a large share
        # replicates a.  With |a| huge the optimizer must keep y's share low.
        shares = optimize_shares({"a": 1e9, "b": 10, "c": 10}, classes, 64)
        class_y_index = next(
            i for i, klass in enumerate(classes) if "c" in klass
        )
        assert shares[class_y_index] <= 2


class TestSharesJoin:
    @pytest.mark.parametrize("budget", [1, 4, 16])
    def test_matches_reference(self, budget):
        query = chain_equi_query()
        cluster = SimulatedCluster()
        files = [
            cluster.hdfs.put(relation_to_composite_file(query.relations[a], a))
            for a in sorted(query.relations)
        ]
        spec = make_shares_join_job(
            "shares", files, query.conditions,
            {a: query.relations[a].schema for a in query.relations},
            total_reducers=budget,
        )
        result = cluster.run_job(spec)
        assert join_result_signature(result.output.records) == join_result_signature(
            reference_join(query)
        )

    def test_explicit_share_vector(self):
        query = chain_equi_query(12)
        cluster = SimulatedCluster()
        files = [
            cluster.hdfs.put(relation_to_composite_file(query.relations[a], a))
            for a in sorted(query.relations)
        ]
        spec = make_shares_join_job(
            "shares-explicit", files, query.conditions,
            {a: query.relations[a].schema for a in query.relations},
            total_reducers=8, shares=[2, 4],
        )
        assert spec.num_reducers == 8
        result = cluster.run_job(spec)
        assert join_result_signature(result.output.records) == join_result_signature(
            reference_join(query)
        )

    def test_star_join(self):
        hub = rel("HUB", 15)
        d1 = rel("D1", 12, seed=1)
        d2 = rel("D2", 10, seed=2)
        query = JoinQuery(
            "star",
            {"h": hub, "d1": d1, "d2": d2},
            [
                JoinCondition.parse(1, "h.x = d1.x"),
                JoinCondition.parse(2, "h.y = d2.y"),
            ],
        )
        cluster = SimulatedCluster()
        files = [
            cluster.hdfs.put(relation_to_composite_file(query.relations[a], a))
            for a in sorted(query.relations)
        ]
        spec = make_shares_join_job(
            "shares-star", files, query.conditions,
            {a: query.relations[a].schema for a in query.relations},
            total_reducers=9,
        )
        result = cluster.run_job(spec)
        assert join_result_signature(result.output.records) == join_result_signature(
            reference_join(query)
        )
