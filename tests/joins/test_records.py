"""Tests for composite join records and merge semantics."""

import pytest

from repro.errors import ExecutionError
from repro.joins.records import (
    aliases_of,
    composite_width,
    composites_to_relation,
    entry_for,
    global_id_of,
    merge_composites,
    relation_to_composite_file,
    row_of,
    rows_by_alias,
    singleton,
)
from repro.relational.relation import Relation
from repro.relational.schema import Schema


@pytest.fixture
def relation():
    return Relation("R", Schema.of("id:int", "v:int"), [(i, i * 2) for i in range(5)])


class TestBasics:
    def test_singleton(self):
        composite = singleton("a", 3, (3, 6))
        assert aliases_of(composite) == ("a",)
        assert row_of(composite, "a") == (3, 6)
        assert global_id_of(composite, "a") == 3

    def test_entry_for_missing(self):
        with pytest.raises(ExecutionError):
            entry_for(singleton("a", 0, (0,)), "b")

    def test_rows_by_alias(self):
        composite = merge_composites(
            singleton("a", 0, (1,)), singleton("b", 1, (2,))
        )
        assert rows_by_alias(composite) == {"a": (1,), "b": (2,)}


class TestMerge:
    def test_disjoint_merge_sorted_by_alias(self):
        merged = merge_composites(singleton("b", 1, (1,)), singleton("a", 0, (0,)))
        assert aliases_of(merged) == ("a", "b")

    def test_shared_alias_same_id_merges(self):
        left = merge_composites(singleton("a", 2, (2,)), singleton("b", 0, (0,)))
        right = merge_composites(singleton("a", 2, (2,)), singleton("c", 1, (1,)))
        merged = merge_composites(left, right)
        assert merged is not None
        assert aliases_of(merged) == ("a", "b", "c")

    def test_shared_alias_conflicting_id_returns_none(self):
        left = singleton("a", 1, (1,))
        right = singleton("a", 2, (2,))
        assert merge_composites(left, right) is None

    def test_merge_with_empty(self):
        composite = singleton("a", 0, (0,))
        assert merge_composites((), composite) == composite


class TestFiles:
    def test_relation_to_composite_file(self, relation):
        file = relation_to_composite_file(relation, "x")
        assert file.num_records == 5
        assert file.tag == "x"
        # Global ids are row positions.
        assert [global_id_of(c, "x") for c in file.records] == list(range(5))

    def test_composite_width_accounts_all_aliases(self, relation):
        schemas = {"a": relation.schema, "b": relation.schema}
        width = composite_width(schemas, ["a", "b"])
        assert width == 2 * (16 + relation.schema.row_width)


class TestToRelation:
    def test_full_concatenation(self, relation):
        schemas = {"a": relation.schema, "b": relation.schema}
        composites = [
            merge_composites(singleton("a", 0, (0, 0)), singleton("b", 1, (1, 2)))
        ]
        out = composites_to_relation(composites, schemas, "out")
        assert out.schema.names == ("a_id", "a_v", "b_id", "b_v")
        assert out.rows == [(0, 0, 1, 2)]

    def test_projection(self, relation):
        schemas = {"a": relation.schema, "b": relation.schema}
        composites = [
            merge_composites(singleton("a", 0, (7, 8)), singleton("b", 1, (1, 2)))
        ]
        out = composites_to_relation(
            composites, schemas, "out", projection=[("b", "v"), ("a", "id")]
        )
        assert out.schema.names == ("b_v", "a_id")
        assert out.rows == [(2, 7)]
