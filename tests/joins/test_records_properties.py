"""Property-based tests for composite-record algebra (Section 4.2 merges)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.joins.records import (
    aliases_of,
    global_id_of,
    merge_composites,
    rows_by_alias,
    singleton,
)

ALIASES = ["a", "b", "c", "d"]


@st.composite
def composites(draw):
    """A random alias-sorted composite over a subset of ALIASES."""
    chosen = draw(
        st.lists(st.sampled_from(ALIASES), min_size=1, max_size=4, unique=True)
    )
    entries = []
    for alias in sorted(chosen):
        gid = draw(st.integers(min_value=0, max_value=5))
        # The row is a pure function of (alias, gid), as in a real base
        # relation: the same global id always denotes the same tuple.
        row = (gid, hash(alias) % 97 + gid * 7)
        entries.append((alias, gid, row))
    return tuple(entries)


class TestMergeAlgebra:
    @given(composites(), composites())
    @settings(max_examples=80, deadline=None)
    def test_merge_symmetric(self, left, right):
        """Merging is order-independent (both sides agree on shared rows
        because gid determines the row in this generator)."""
        assert merge_composites(left, right) == merge_composites(right, left)

    @given(composites())
    @settings(max_examples=40, deadline=None)
    def test_merge_idempotent(self, composite):
        assert merge_composites(composite, composite) == composite

    @given(composites())
    @settings(max_examples=40, deadline=None)
    def test_merge_with_empty_is_identity(self, composite):
        assert merge_composites(composite, ()) == composite
        assert merge_composites((), composite) == composite

    @given(composites(), composites())
    @settings(max_examples=80, deadline=None)
    def test_merge_covers_union_or_fails(self, left, right):
        merged = merge_composites(left, right)
        shared = set(aliases_of(left)) & set(aliases_of(right))
        disagree = any(
            global_id_of(left, alias) != global_id_of(right, alias)
            for alias in shared
        )
        if disagree:
            assert merged is None
        else:
            assert merged is not None
            assert set(aliases_of(merged)) == set(aliases_of(left)) | set(
                aliases_of(right)
            )

    @given(composites(), composites())
    @settings(max_examples=60, deadline=None)
    def test_merged_is_alias_sorted(self, left, right):
        merged = merge_composites(left, right)
        if merged is not None:
            names = aliases_of(merged)
            assert list(names) == sorted(names)

    @given(composites(), composites())
    @settings(max_examples=60, deadline=None)
    def test_merge_preserves_constituent_rows(self, left, right):
        merged = merge_composites(left, right)
        if merged is None:
            return
        rows = rows_by_alias(merged)
        for alias, _gid, row in left:
            assert rows[alias] == row
        for alias, gid, row in right:
            if alias not in {a for a, _, _ in left}:
                assert rows[alias] == row

    def test_conflicting_ids_reject(self):
        left = singleton("a", 1, (1, 10))
        right = singleton("a", 2, (2, 20))
        assert merge_composites(left, right) is None

    @given(composites(), composites(), composites())
    @settings(max_examples=60, deadline=None)
    def test_merge_associative(self, x, y, z):
        """(x + y) + z == x + (y + z), treating None as absorbing."""
        def merge3(a, b, c):
            ab = merge_composites(a, b)
            if ab is None:
                return None
            return merge_composites(ab, c)

        def merge3_right(a, b, c):
            bc = merge_composites(b, c)
            if bc is None:
                return None
            return merge_composites(a, bc)

        left = merge3(x, y, z)
        right = merge3_right(x, y, z)
        # A left-association failure can happen at a different step than a
        # right-association failure, but success values must agree...
        if left is not None and right is not None:
            assert left == right
        # ...and a total conflict is a total conflict on both sides:
        # the generator ties rows to gids, so disagreement is symmetric.
        if left is None:
            assert right is None
        if right is None:
            assert left is None
