"""Batch-vs-scalar equivalence across the whole query matrix.

Every join job builder ships a per-record ``mapper`` and a per-key-group
``reducer`` (the executable specifications) plus vectorized
``batch_mapper``/``batch_reducer`` counterparts.  These tests run every
map AND reduce phase of every planner's plan through *both* paths and
require bit-identical buckets (including key insertion order), outputs,
counters, per-task costs, and shuffle bytes — on the paper's mobile
queries and the TPC-H extensions — plus identical final answers across
all four planners.  Synthetic large joins push the group sizes over the
NumPy probe/pair-mask thresholds the benchmark grid stays under.
"""

import dataclasses

import pytest

from repro.baselines import HivePlanner, PigPlanner, YSmartPlanner
from repro.core.executor import PlanExecutor
from repro.core.partitioner import HypercubePartitioner
from repro.core.planner import ThetaJoinPlanner
from repro.joins.jobs import (
    make_broadcast_join_job,
    make_equi_join_job,
    make_equichain_join_job,
    make_hypercube_join_job,
    make_keyspread_partitioner,
)
from repro.joins.records import relation_to_composite_file
from repro.mapreduce.config import PAPER_CLUSTER_KP64
from repro.mapreduce.counters import JobMetrics
from repro.mapreduce.runtime import SimulatedCluster
from repro.relational.predicates import JoinCondition
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.utils import make_rng
from repro.workloads.mobile import mobile_benchmark_query
from repro.workloads.tpch import tpch_benchmark_query

METHOD_PLANNERS = (ThetaJoinPlanner, YSmartPlanner, HivePlanner, PigPlanner)


class BothPathsCluster(SimulatedCluster):
    """A cluster that runs every batched map and reduce phase through the
    scalar path as well and asserts exact agreement."""

    def __init__(self, config):
        super().__init__(config)
        self.map_phases_checked = 0
        self.reduce_phases_checked = 0

    def _run_map_phase(self, spec, metrics):
        result = super()._run_map_phase(spec, metrics)
        if spec.batch_mapper is None:
            return result
        scalar_metrics = JobMetrics(job_name=spec.name)
        scalar_buckets, _ = super()._run_map_phase(
            dataclasses.replace(spec, batch_mapper=None), scalar_metrics
        )
        batched_buckets, _ = result
        assert batched_buckets == scalar_buckets, spec.name
        for batched, scalar in zip(batched_buckets, scalar_buckets):
            assert list(batched) == list(scalar), (
                f"{spec.name}: key insertion order differs"
            )
        assert metrics.map_output_records == scalar_metrics.map_output_records
        assert metrics.map_output_bytes == scalar_metrics.map_output_bytes
        assert metrics.shuffle_bytes == scalar_metrics.shuffle_bytes
        self.map_phases_checked += 1
        return result

    def _run_reduce_phase(self, spec, buckets, metrics):
        result = super()._run_reduce_phase(spec, buckets, metrics)
        if spec.batch_reducer is None:
            return result
        scalar_metrics = JobMetrics(job_name=spec.name)
        scalar_outputs, scalar_costs = super()._run_reduce_phase(
            dataclasses.replace(spec, batch_reducer=None), buckets, scalar_metrics
        )
        batched_outputs, batched_costs = result
        assert batched_outputs == scalar_outputs, (
            f"{spec.name}: reduce outputs differ"
        )
        assert batched_costs == scalar_costs, f"{spec.name}: reduce costs differ"
        assert (
            metrics.reducer_input_bytes[-spec.num_reducers :]
            == scalar_metrics.reducer_input_bytes
        ), f"{spec.name}: reducer input bytes differ"
        assert metrics.reduce_comparisons == scalar_metrics.reduce_comparisons, (
            f"{spec.name}: comparison counts differ"
        )
        self.reduce_phases_checked += 1
        return result


def run_matrix(query):
    answers = set()
    map_checked = 0
    reduce_checked = 0
    for planner_cls in METHOD_PLANNERS:
        plan = planner_cls(PAPER_CLUSTER_KP64).plan(query)
        cluster = BothPathsCluster(PAPER_CLUSTER_KP64)
        outcome = PlanExecutor(cluster).execute(plan, query)
        answers.add(tuple(sorted(map(tuple, outcome.result.rows))))
        map_checked += cluster.map_phases_checked
        reduce_checked += cluster.reduce_phases_checked
    assert len(answers) == 1, f"{query.name}: planners disagree"
    assert map_checked > 0, f"{query.name}: no batched map phase exercised"
    assert reduce_checked > 0, f"{query.name}: no batched reduce phase exercised"


@pytest.mark.parametrize("query_id", [1, 2, 3, 4])
def test_mobile_batch_equivalence(query_id):
    run_matrix(mobile_benchmark_query(query_id, 20))


@pytest.mark.parametrize("query_id", [3, 5, 7])
def test_tpch_batch_equivalence(query_id):
    run_matrix(tpch_benchmark_query(query_id, 200))


def big_rel(name: str, rows: int, hi: int, groups: int, seed: int = 0) -> Relation:
    rng = make_rng("batch-equiv", name, rows, seed)
    return Relation(
        name,
        Schema.of("id:int", "v:int", "g:int"),
        [
            (i, rng.randint(0, hi - 1), rng.randint(0, groups - 1))
            for i in range(rows)
        ],
    )


def assert_both_reduce_paths_agree(spec):
    """Run one job's reduce phase through both paths on the same buckets."""
    cluster = SimulatedCluster(PAPER_CLUSTER_KP64)
    metrics = JobMetrics(job_name=spec.name)
    buckets, _ = cluster._run_map_phase(spec, metrics)
    assert spec.batch_reducer is not None
    batched_metrics = JobMetrics(job_name=spec.name)
    batched = cluster._run_reduce_phase(spec, buckets, batched_metrics)
    scalar_metrics = JobMetrics(job_name=spec.name)
    scalar = cluster._run_reduce_phase(
        dataclasses.replace(spec, batch_reducer=None), buckets, scalar_metrics
    )
    assert batched[0] == scalar[0]
    assert batched[1] == scalar[1]
    assert batched_metrics.reducer_input_bytes == scalar_metrics.reducer_input_bytes
    assert batched_metrics.reduce_comparisons == scalar_metrics.reduce_comparisons
    assert batched[0], f"{spec.name}: degenerate test, no outputs"


class TestLargeGroupNumpyPaths:
    """Group sizes above ``_NP_MIN_PROBE``/``_NP_MIN_PAIRS`` so the NumPy
    sorted-probe and pair-mask fast paths run (and must stay exact)."""

    def test_hypercube_range_probe(self):
        rels = {"a": big_rel("A", 300, 2000, 4), "b": big_rel("B", 300, 2000, 4, 1)}
        conditions = [JoinCondition.parse(1, "a.v < b.v")]
        files = [relation_to_composite_file(rels[a], a) for a in ("a", "b")]
        partitioner = HypercubePartitioner([300, 300], 2)
        spec = make_hypercube_join_job(
            "np-range",
            files,
            [("a",), ("b",)],
            partitioner,
            conditions,
            {a: r.schema for a, r in rels.items()},
        )
        assert_both_reduce_paths_agree(spec)

    def test_hypercube_hash_probe(self):
        rels = {"a": big_rel("A", 300, 50, 3), "b": big_rel("B", 300, 50, 3, 1)}
        conditions = [JoinCondition.parse(1, "a.g = b.g", "a.v < b.v")]
        files = [relation_to_composite_file(rels[a], a) for a in ("a", "b")]
        partitioner = HypercubePartitioner([300, 300], 2)
        spec = make_hypercube_join_job(
            "np-hash",
            files,
            [("a",), ("b",)],
            partitioner,
            conditions,
            {a: r.schema for a, r in rels.items()},
        )
        assert_both_reduce_paths_agree(spec)

    def test_equi_pair_mask(self):
        rels = {"a": big_rel("A", 150, 40, 1), "b": big_rel("B", 150, 40, 1, 1)}
        conditions = [JoinCondition.parse(1, "a.g = b.g", "a.v != b.v")]
        spec = make_equi_join_job(
            "np-equi",
            relation_to_composite_file(rels["a"], "a"),
            relation_to_composite_file(rels["b"], "b"),
            conditions,
            {a: r.schema for a, r in rels.items()},
            num_reducers=2,
        )
        assert_both_reduce_paths_agree(spec)

    def test_broadcast_pair_mask(self):
        rels = {"a": big_rel("A", 300, 2000, 4), "b": big_rel("B", 80, 2000, 4, 1)}
        conditions = [JoinCondition.parse(1, "a.v < b.v")]
        spec = make_broadcast_join_job(
            "np-bcast",
            relation_to_composite_file(rels["a"], "a"),
            relation_to_composite_file(rels["b"], "b"),
            conditions,
            {a: r.schema for a, r in rels.items()},
            num_reducers=2,
        )
        assert_both_reduce_paths_agree(spec)

    def test_equichain_pair_mask(self):
        rels = {"a": big_rel("A", 200, 500, 1), "b": big_rel("B", 200, 500, 1, 1)}
        conditions = [
            JoinCondition.parse(1, "a.g = b.g"),
            JoinCondition.parse(2, "a.v < b.v"),
        ]
        spec = make_equichain_join_job(
            "np-chain",
            [
                relation_to_composite_file(rels["a"], "a"),
                relation_to_composite_file(rels["b"], "b"),
            ],
            conditions,
            {a: r.schema for a, r in rels.items()},
            num_reducers=2,
        )
        assert_both_reduce_paths_agree(spec)


class TestKeyspreadPartitioner:
    def test_balanced_key_counts(self):
        keys = [("k", (i,)) for i in range(103)]
        partition, mapping = make_keyspread_partitioner(keys, 8)
        per_reducer = [0] * 8
        for key in keys:
            index = partition(key, 8)
            assert 0 <= index < 8
            per_reducer[index] += 1
        assert max(per_reducer) - min(per_reducer) <= 1

    def test_deterministic(self):
        keys = [("k", (i, i % 3)) for i in range(50)]
        _, mapping_a = make_keyspread_partitioner(keys, 16)
        _, mapping_b = make_keyspread_partitioner(reversed(keys), 16)
        assert mapping_a == mapping_b

    def test_fewer_keys_than_reducers(self):
        keys = [("k", (i,)) for i in range(3)]
        partition, mapping = make_keyspread_partitioner(keys, 64)
        assert len({partition(k, 64) for k in keys}) == 3

    def test_empty_population_falls_back(self):
        partition, mapping = make_keyspread_partitioner([], 8)
        assert mapping == {}
        assert partition(("k", (1,)), 8) in range(8)
