"""Batch-vs-scalar mapper equivalence across the whole query matrix.

Every join job builder ships both a per-record ``mapper`` (the executable
specification) and a vectorized ``batch_mapper``.  These tests run every
map phase of every planner's plan through *both* paths and require
bit-identical buckets (including key insertion order), counters, and
shuffle bytes — on the paper's mobile queries and the TPC-H extensions —
plus identical final answers across all four planners.
"""

import dataclasses

import pytest

from repro.baselines import HivePlanner, PigPlanner, YSmartPlanner
from repro.core.executor import PlanExecutor
from repro.core.planner import ThetaJoinPlanner
from repro.joins.jobs import make_keyspread_partitioner
from repro.mapreduce.config import PAPER_CLUSTER_KP64
from repro.mapreduce.counters import JobMetrics
from repro.mapreduce.runtime import SimulatedCluster
from repro.workloads.mobile import mobile_benchmark_query
from repro.workloads.tpch import tpch_benchmark_query

METHOD_PLANNERS = (ThetaJoinPlanner, YSmartPlanner, HivePlanner, PigPlanner)


class BothPathsCluster(SimulatedCluster):
    """A cluster that runs every batched map phase through the scalar
    path as well and asserts exact agreement."""

    def __init__(self, config):
        super().__init__(config)
        self.map_phases_checked = 0

    def _run_map_phase(self, spec, metrics):
        result = super()._run_map_phase(spec, metrics)
        if spec.batch_mapper is None:
            return result
        scalar_metrics = JobMetrics(job_name=spec.name)
        scalar_buckets, _ = super()._run_map_phase(
            dataclasses.replace(spec, batch_mapper=None), scalar_metrics
        )
        batched_buckets, _ = result
        assert batched_buckets == scalar_buckets, spec.name
        for batched, scalar in zip(batched_buckets, scalar_buckets):
            assert list(batched) == list(scalar), (
                f"{spec.name}: key insertion order differs"
            )
        assert metrics.map_output_records == scalar_metrics.map_output_records
        assert metrics.map_output_bytes == scalar_metrics.map_output_bytes
        assert metrics.shuffle_bytes == scalar_metrics.shuffle_bytes
        self.map_phases_checked += 1
        return result


def run_matrix(query):
    answers = set()
    checked = 0
    for planner_cls in METHOD_PLANNERS:
        plan = planner_cls(PAPER_CLUSTER_KP64).plan(query)
        cluster = BothPathsCluster(PAPER_CLUSTER_KP64)
        outcome = PlanExecutor(cluster).execute(plan, query)
        answers.add(tuple(sorted(map(tuple, outcome.result.rows))))
        checked += cluster.map_phases_checked
    assert len(answers) == 1, f"{query.name}: planners disagree"
    assert checked > 0, f"{query.name}: no batched map phase exercised"


@pytest.mark.parametrize("query_id", [1, 2, 3, 4])
def test_mobile_batch_equivalence(query_id):
    run_matrix(mobile_benchmark_query(query_id, 20))


@pytest.mark.parametrize("query_id", [3, 5, 7])
def test_tpch_batch_equivalence(query_id):
    run_matrix(tpch_benchmark_query(query_id, 200))


class TestKeyspreadPartitioner:
    def test_balanced_key_counts(self):
        keys = [("k", (i,)) for i in range(103)]
        partition, mapping = make_keyspread_partitioner(keys, 8)
        per_reducer = [0] * 8
        for key in keys:
            index = partition(key, 8)
            assert 0 <= index < 8
            per_reducer[index] += 1
        assert max(per_reducer) - min(per_reducer) <= 1

    def test_deterministic(self):
        keys = [("k", (i, i % 3)) for i in range(50)]
        _, mapping_a = make_keyspread_partitioner(keys, 16)
        _, mapping_b = make_keyspread_partitioner(reversed(keys), 16)
        assert mapping_a == mapping_b

    def test_fewer_keys_than_reducers(self):
        keys = [("k", (i,)) for i in range(3)]
        partition, mapping = make_keyspread_partitioner(keys, 64)
        assert len({partition(k, 64) for k in keys}) == 3

    def test_empty_population_falls_back(self):
        partition, mapping = make_keyspread_partitioner([], 8)
        assert mapping == {}
        assert partition(("k", (1,)), 8) in range(8)
