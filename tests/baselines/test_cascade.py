"""Tests for the cascade baselines (Hive / Pig / YSmart planning)."""

import pytest

from repro.baselines import HivePlanner, PigPlanner, YSmartPlanner
from repro.baselines.cascade import has_usable_equi_key, written_alias_order
from repro.core.plan import (
    STRATEGY_EQUI,
    STRATEGY_EQUICHAIN,
    STRATEGY_ONEBUCKET,
    STRATEGY_RANDOMCUBE,
)
from repro.mapreduce.config import ClusterConfig
from repro.relational.predicates import JoinCondition
from repro.relational.query import JoinQuery
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.utils import make_rng


def rel(name, rows=20, seed=0):
    rng = make_rng("cascade-test", name, seed)
    return Relation(
        name,
        Schema.of("id:int", "v:int", "g:int"),
        [(i, rng.randint(0, 40), rng.randint(0, 4)) for i in range(rows)],
    )


@pytest.fixture
def mixed_query():
    """theta edge first in written order; equality edges later."""
    return JoinQuery(
        "mixed",
        {"t": rel("T"), "u": rel("U", seed=1), "w": rel("W", seed=2)},
        [
            JoinCondition.parse(1, "t.v < u.v"),
            JoinCondition.parse(2, "u.g = w.g"),
        ],
    )


class TestAliasOrder:
    def test_equality_joins_ordered_first(self, mixed_query):
        order = written_alias_order(mixed_query)
        # u-w is the equality edge; the theta-only relation t comes last.
        assert order.index("t") == 2

    def test_order_always_connects(self, mixed_query):
        order = written_alias_order(mixed_query)
        for i in range(1, len(order)):
            bound = set(order[:i])
            assert any(
                c.touches(order[i]) and c.other_alias(order[i]) in bound
                for c in mixed_query.conditions
            )

    def test_key_continuity_groups_same_key_steps(self):
        query = JoinQuery(
            "chainkeys",
            {
                "o": rel("O"),
                "l1": rel("L1", seed=1),
                "l2": rel("L2", seed=2),
                "c": rel("CU", seed=3),
            },
            [
                JoinCondition.parse(1, "c.g = o.g"),
                JoinCondition.parse(2, "o.id = l1.id"),
                JoinCondition.parse(3, "l1.id = l2.id"),
            ],
        )
        order = written_alias_order(query, key_continuity=True)
        # After l1 binds via o.id, l2 (same key class) must follow directly.
        assert order.index("l2") == order.index("l1") + 1


class TestHasUsableEquiKey:
    def test_detects_plain_equality(self):
        assert has_usable_equi_key([JoinCondition.parse(1, "a.g = b.g")])

    def test_offset_equality_unusable(self):
        assert not has_usable_equi_key([JoinCondition.parse(1, "a.g + 1 = b.g")])

    def test_inequalities_unusable(self):
        assert not has_usable_equi_key([JoinCondition.parse(1, "a.v < b.v")])


class TestPlanShapes:
    def test_hive_theta_step_is_randomcube(self, mixed_query):
        plan = HivePlanner(ClusterConfig()).plan(mixed_query)
        strategies = {job.strategy for job in plan.jobs}
        assert STRATEGY_RANDOMCUBE in strategies
        assert STRATEGY_EQUI in strategies

    def test_ysmart_theta_step_is_onebucket(self, mixed_query):
        plan = YSmartPlanner(ClusterConfig()).plan(mixed_query)
        assert STRATEGY_ONEBUCKET in {job.strategy for job in plan.jobs}

    def test_pig_materialisation_overheads(self, mixed_query):
        plan = PigPlanner(ClusterConfig()).plan(mixed_query)
        intermediates = [j for j in plan.jobs if j is not plan.jobs[-1]]
        assert all(j.output_replication == 3 for j in intermediates)
        assert plan.jobs[-1].output_replication == 1  # final result
        assert all(j.extra_startup_s > 0 for j in plan.jobs)

    def test_cascade_is_sequential(self, mixed_query):
        plan = HivePlanner(ClusterConfig()).plan(mixed_query)
        for previous, job in zip(plan.jobs, plan.jobs[1:]):
            assert previous.job_id in job.depends_on

    def test_all_conditions_covered(self, mixed_query):
        for planner_cls in (HivePlanner, PigPlanner, YSmartPlanner):
            plan = planner_cls(ClusterConfig()).plan(mixed_query)
            assert plan.covered_condition_ids() == frozenset(
                mixed_query.condition_ids
            )

    def test_max_reducers_requested(self, mixed_query):
        config = ClusterConfig()
        plan = HivePlanner(config).plan(mixed_query)
        assert all(j.num_reducers == config.total_units for j in plan.jobs)


class TestYSmartMerging:
    def test_transit_correlated_steps_merged(self):
        """Two cascade steps keyed on the same attribute collapse into one
        equichain job (Q18's orders/lineitem/lineitem pattern)."""
        query = JoinQuery(
            "transit",
            {
                "c": rel("C2"),
                "o": rel("O2", seed=1),
                "l1": rel("LA", seed=2),
                "l2": rel("LB", seed=3),
            },
            [
                JoinCondition.parse(1, "c.g = o.g"),
                JoinCondition.parse(2, "o.id = l1.id"),
                JoinCondition.parse(3, "l1.id = l2.id", "l1.v >= l2.v"),
            ],
        )
        hive = HivePlanner(ClusterConfig()).plan(query)
        ysmart = YSmartPlanner(ClusterConfig()).plan(query)
        assert ysmart.num_jobs < hive.num_jobs
        assert STRATEGY_EQUICHAIN in {j.strategy for j in ysmart.jobs}

    def test_uncorrelated_steps_not_merged(self, mixed_query):
        ysmart = YSmartPlanner(ClusterConfig()).plan(mixed_query)
        hive = HivePlanner(ClusterConfig()).plan(mixed_query)
        assert ysmart.num_jobs == hive.num_jobs
