"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest

from repro.mapreduce.config import ClusterConfig


@pytest.fixture(scope="session", autouse=True)
def _scoped_cache_dir(tmp_path_factory):
    """Point REPRO_CACHE_DIR at a session-scoped tmp dir unless the
    environment already pins one: spawned worker daemons inherit it, so
    test runs never write blob or planning entries into the user's real
    ``~/.cache/repro``.  Tests that need their own root still override
    via monkeypatch/execution_env as before."""
    if os.environ.get("REPRO_CACHE_DIR"):
        yield
        return
    root = str(tmp_path_factory.mktemp("repro-cache"))
    os.environ["REPRO_CACHE_DIR"] = root
    try:
        yield
    finally:
        if os.environ.get("REPRO_CACHE_DIR") == root:
            del os.environ["REPRO_CACHE_DIR"]
from repro.mapreduce.runtime import SimulatedCluster
from repro.relational.predicates import JoinCondition
from repro.relational.query import JoinQuery
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.utils import make_rng


@pytest.fixture
def config() -> ClusterConfig:
    return ClusterConfig()


@pytest.fixture
def small_config() -> ClusterConfig:
    """A small cluster so reducer-count limits are easy to hit in tests."""
    return ClusterConfig().with_units(16)


@pytest.fixture
def cluster(config) -> SimulatedCluster:
    return SimulatedCluster(config)


def make_relation(name: str, rows: int, value_range: int = 60, groups: int = 5,
                  seed: int = 0) -> Relation:
    """A small test relation (id, v, g) with uniform v and small-domain g."""
    rng = make_rng("test-relation", name, rows, seed)
    schema = Schema.of("id:int", "v:int", "g:int")
    return Relation(
        name,
        schema,
        [
            (i, rng.randint(0, value_range - 1), rng.randint(0, groups - 1))
            for i in range(rows)
        ],
    )


@pytest.fixture
def three_way_query() -> JoinQuery:
    """A chain query a < b = c used across planner/executor tests."""
    a = make_relation("A", 40)
    b = make_relation("B", 35, seed=1)
    c = make_relation("C", 30, seed=2)
    return JoinQuery(
        "three-way",
        {"a": a, "b": b, "c": c},
        [
            JoinCondition.parse(1, "a.v < b.v"),
            JoinCondition.parse(2, "b.g = c.g"),
        ],
    )


@pytest.fixture
def triangle_query() -> JoinQuery:
    """Triangle + pendant with offsets: stresses every operator path."""
    a = make_relation("TA", 30)
    b = make_relation("TB", 28, seed=3)
    c = make_relation("TC", 26, seed=4)
    d = make_relation("TD", 24, seed=5)
    return JoinQuery(
        "triangle",
        {"a": a, "b": b, "c": c, "d": d},
        [
            JoinCondition.parse(1, "a.v < b.v", "b.v < a.v + 20"),
            JoinCondition.parse(2, "b.g = c.g"),
            JoinCondition.parse(3, "a.v >= c.v"),
            JoinCondition.parse(4, "a.g != d.g"),
        ],
    )
