"""Tests for shared utilities."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils import (
    argmin,
    ceil_div,
    chunks,
    format_bytes,
    is_power_of_two,
    linear_fit,
    make_rng,
    mean,
    next_power_of_two,
    reservoir_sample,
    stable_hash,
    stddev,
)


class TestRng:
    def test_same_seed_same_stream(self):
        assert make_rng("a", 1).random() == make_rng("a", 1).random()

    def test_different_seed_parts(self):
        assert make_rng("job", 3).random() != make_rng("job", 30).random()


class TestStableHash:
    def test_in_range(self):
        for value in ("x", 42, (1, "y")):
            assert 0 <= stable_hash(value, 7) < 7

    def test_deterministic(self):
        assert stable_hash("key", 100) == stable_hash("key", 100)

    def test_invalid_buckets(self):
        with pytest.raises(ValueError):
            stable_hash("x", 0)

    @given(st.integers(), st.integers(min_value=1, max_value=1000))
    @settings(max_examples=30)
    def test_property_range(self, value, buckets):
        assert 0 <= stable_hash(value, buckets) < buckets


class TestMath:
    def test_ceil_div(self):
        assert ceil_div(5, 2) == 3
        assert ceil_div(4, 2) == 2
        assert ceil_div(0, 3) == 0
        with pytest.raises(ValueError):
            ceil_div(1, 0)

    def test_next_power_of_two(self):
        assert next_power_of_two(1) == 1
        assert next_power_of_two(3) == 4
        assert next_power_of_two(16) == 16
        with pytest.raises(ValueError):
            next_power_of_two(0)

    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(64)
        assert not is_power_of_two(6)
        assert not is_power_of_two(0)

    def test_mean_stddev(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert stddev([2.0, 2.0]) == 0.0
        with pytest.raises(ValueError):
            mean([])

    def test_linear_fit(self):
        a, b = linear_fit([0, 1, 2, 3], [1, 3, 5, 7])
        assert a == pytest.approx(2.0)
        assert b == pytest.approx(1.0)
        with pytest.raises(ValueError):
            linear_fit([1, 1], [2, 3])

    def test_argmin(self):
        assert argmin([("a", 3.0), ("b", 1.0), ("c", 2.0)]) == "b"
        with pytest.raises(ValueError):
            argmin([])


class TestFormatting:
    def test_format_bytes(self):
        assert format_bytes(512) == "512.0 B"
        assert format_bytes(2 * 1024 ** 2) == "2.0 MB"
        assert format_bytes(3 * 1024 ** 3) == "3.0 GB"


class TestCollections:
    def test_chunks(self):
        assert list(chunks([1, 2, 3, 4, 5], 2)) == [[1, 2], [3, 4], [5]]
        with pytest.raises(ValueError):
            list(chunks([1], 0))

    def test_reservoir_sample_size(self):
        sample = reservoir_sample(range(100), 10, make_rng("s"))
        assert len(sample) == 10
        assert len(set(sample)) == 10

    def test_reservoir_small_input(self):
        assert sorted(reservoir_sample(range(3), 10, make_rng("s"))) == [0, 1, 2]

    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=20)
    def test_property_reservoir_uniform_membership(self, k):
        sample = reservoir_sample(range(100), k, make_rng("p", k))
        assert len(sample) == min(k, 100)
        assert all(0 <= x < 100 for x in sample)
