"""The unified storage API: one protocol, three tiers, no internals.

:mod:`repro.storage` is the single surface callers use — both disk
stores satisfy the :class:`~repro.storage.base.BlobStore` protocol where
it applies, and the ``repro cache`` CLI goes through
:func:`~repro.storage.tier_stats` / :func:`~repro.storage.clear_tiers`
instead of reaching into store internals.
"""

import pytest

from repro.storage import (
    BlobStore,
    DiskBlobStore,
    KeyedDiskStore,
    LRUTable,
    blob_digest,
    checkpoint_tier,
    clear_tiers,
    planning_tier,
    tier_stats,
)

TIERS = ("planning", "checkpoints", "blobs")


@pytest.fixture(autouse=True)
def _cache_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    yield tmp_path / "cache"


class TestProtocol:
    def test_disk_blob_store_satisfies_the_protocol(self, tmp_path):
        assert isinstance(DiskBlobStore(tmp_path / "b"), BlobStore)

    def test_lru_table_basics(self):
        table = LRUTable(max_entries=2)
        table.store("a", 1)
        table.store("b", 2)
        table.lookup("a")  # refresh: "b" becomes the eviction victim
        table.store("c", 3)
        assert table.lookup("a") == (True, 1)
        assert table.lookup("b") == (False, None)
        assert table.lookup("c") == (True, 3)


class TestKeyedStore:
    def test_version_skew_reads_as_miss(self, tmp_path):
        writer = KeyedDiskStore(tmp_path / "k", ("t",), version="1")
        writer.store("t", ("key",), "value")
        reader = KeyedDiskStore(tmp_path / "k", ("t",), version="2")
        hit, _ = reader.load("t", ("key",))
        assert not hit
        # The skewed file was deleted on contact; a same-version reader
        # now simply misses.
        hit, _ = KeyedDiskStore(tmp_path / "k", ("t",), version="1").load(
            "t", ("key",)
        )
        assert not hit

    def test_stats_shape(self, tmp_path):
        store = KeyedDiskStore(tmp_path / "k", ("alpha", "beta"))
        store.store("alpha", ("k",), [1, 2, 3])
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["bytes"] > 0
        assert set(stats["tables"]) == {"alpha", "beta"}


class TestTiers:
    def populate(self, cache_root):
        planning = planning_tier()
        planning.store("samples", ("fingerprint", "a", 10), [1, 2, 3])
        checkpoint_tier().store(
            "waves", ("wave-key",), {"digest": "d" * 64, "bytes": 16}
        )
        blobs = DiskBlobStore(cache_root / "blobs")
        payload = b"blob payload" * 50
        blobs.put(blob_digest(payload), payload)

    def test_tier_stats_reports_every_tier(self, _cache_env):
        self.populate(_cache_env)
        stats = tier_stats()
        assert set(stats) == set(TIERS)
        for tier in TIERS:
            assert stats[tier]["entries"] == 1
            assert stats[tier]["root"] == str(_cache_env / tier)

    def test_clear_tiers_clears_all(self, _cache_env):
        self.populate(_cache_env)
        removed = clear_tiers()
        assert removed == {"planning": 1, "checkpoints": 1, "blobs": 1}
        stats = tier_stats()
        for tier in TIERS:
            assert stats[tier]["entries"] == 0

    def test_clear_tiers_scoped_to_one_tier(self, _cache_env):
        self.populate(_cache_env)
        assert clear_tiers(only="blobs") == {"blobs": 1}
        stats = tier_stats()
        assert stats["planning"]["entries"] == 1
        assert stats["checkpoints"]["entries"] == 1
        assert stats["blobs"]["entries"] == 0

    def test_clear_tiers_scoped_to_checkpoints(self, _cache_env):
        self.populate(_cache_env)
        assert clear_tiers(only="checkpoints") == {"checkpoints": 1}
        assert tier_stats()["planning"]["entries"] == 1

    def test_stats_on_cold_machine_create_nothing(self, _cache_env):
        tier_stats()
        assert not _cache_env.exists()
