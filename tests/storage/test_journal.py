"""The session journal: durable appends, torn-tail replay, concurrency.

The contract the serve-recovery drill leans on: every record whose
``append`` returned is replayable after any crash, a crash mid-append
costs at most that one record (the intact prefix always replays), and
reopening a torn journal seals the tear so later appends land on a
record boundary.
"""

import pickle
import struct
import threading
import zlib

import pytest

from repro.storage import SessionJournal, read_records
from repro.storage.journal import _HEADER, MAX_RECORD_BYTES


def write_journal(path, records):
    journal = SessionJournal(path, fsync=False)
    for record in records:
        assert journal.append(record)
    journal.close()


class TestRoundTrip:
    def test_missing_file_is_an_empty_journal(self, tmp_path):
        records, torn = read_records(tmp_path / "absent.journal")
        assert records == [] and not torn

    def test_records_replay_in_append_order(self, tmp_path):
        path = tmp_path / "j"
        wanted = [
            {"kind": "submit", "id": "q1", "spec": {"sql": "SELECT ..."}},
            {"kind": "state", "id": "q1", "state": "RUNNING"},
            {"kind": "wave", "id": "q1", "digest": "a" * 64, "restored": False},
            {"kind": "terminal", "id": "q1", "state": "DONE",
             "result": {"rows": [(1, 2), (3, 4)]}},
        ]
        write_journal(path, wanted)
        records, torn = read_records(path)
        assert records == wanted and not torn

    def test_reopen_appends_after_existing_records(self, tmp_path):
        path = tmp_path / "j"
        write_journal(path, [{"n": 1}])
        write_journal(path, [{"n": 2}])
        records, torn = read_records(path)
        assert records == [{"n": 1}, {"n": 2}] and not torn

    def test_replay_sees_own_buffered_appends(self, tmp_path):
        journal = SessionJournal(tmp_path / "j", fsync=False)
        journal.append({"n": 1})
        records, torn = journal.replay()
        assert records == [{"n": 1}] and not torn
        journal.close()

    def test_stats_shape(self, tmp_path):
        journal = SessionJournal(tmp_path / "j", fsync=True)
        journal.append({"n": 1})
        stats = journal.stats()
        assert stats["appended"] == 1
        assert stats["append_errors"] == 0
        assert stats["bytes"] > 0
        assert stats["fsync"] is True
        journal.close()


class TestTornTails:
    def sizes(self, path):
        """Byte offsets of each record boundary in an intact journal."""
        offsets, position = [], 0
        with open(path, "rb") as handle:
            while True:
                header = handle.read(_HEADER.size)
                if len(header) < _HEADER.size:
                    return offsets
                length, _crc = _HEADER.unpack(header)
                handle.seek(length, 1)
                position += _HEADER.size + length
                offsets.append(position)

    def test_torn_header_replays_intact_prefix(self, tmp_path):
        path = tmp_path / "j"
        write_journal(path, [{"n": 1}, {"n": 2}])
        boundary = self.sizes(path)[0]
        with open(path, "rb+") as handle:
            handle.truncate(boundary + 3)  # mid-header of record 2
        records, torn = read_records(path)
        assert records == [{"n": 1}] and torn

    def test_torn_payload_replays_intact_prefix(self, tmp_path):
        path = tmp_path / "j"
        write_journal(path, [{"n": 1}, {"n": 2}])
        boundary = self.sizes(path)[0]
        with open(path, "rb+") as handle:
            handle.truncate(boundary + _HEADER.size + 2)  # mid-payload
        records, torn = read_records(path)
        assert records == [{"n": 1}] and torn

    def test_crc_corruption_stops_replay_at_the_tear(self, tmp_path):
        path = tmp_path / "j"
        write_journal(path, [{"n": 1}, {"n": 2}, {"n": 3}])
        boundary = self.sizes(path)[0]
        with open(path, "rb+") as handle:
            handle.seek(boundary + _HEADER.size)  # first payload byte of rec 2
            byte = handle.read(1)
            handle.seek(-1, 1)
            handle.write(bytes([byte[0] ^ 0xFF]))
        records, torn = read_records(path)
        # Replay cannot tell a flipped bit from a tear: everything before
        # the corrupt record survives, nothing after it is trusted.
        assert records == [{"n": 1}] and torn

    def test_implausible_length_field_is_a_tear(self, tmp_path):
        path = tmp_path / "j"
        payload = pickle.dumps({"n": 1})
        with open(path, "wb") as handle:
            handle.write(_HEADER.pack(len(payload), zlib.crc32(payload)))
            handle.write(payload)
            handle.write(_HEADER.pack(MAX_RECORD_BYTES + 1, 0))
            handle.write(b"x" * 32)
        records, torn = read_records(path)
        assert records == [{"n": 1}] and torn

    def test_undecodable_payload_is_a_tear(self, tmp_path):
        path = tmp_path / "j"
        garbage = b"\x80\x05not really a pickle"
        with open(path, "wb") as handle:
            handle.write(_HEADER.pack(len(garbage), zlib.crc32(garbage)))
            handle.write(garbage)
        records, torn = read_records(path)
        assert records == [] and torn

    def test_reopen_seals_a_torn_tail(self, tmp_path):
        path = tmp_path / "j"
        write_journal(path, [{"n": 1}, {"n": 2}])
        boundary = self.sizes(path)[0]
        with open(path, "rb+") as handle:
            handle.truncate(boundary + 5)  # crash mid-record 2
        write_journal(path, [{"n": 3}])
        records, torn = read_records(path)
        # Record 2 is gone (the crash ate it); record 3 starts on a clean
        # boundary, so replay is whole again.
        assert records == [{"n": 1}, {"n": 3}] and not torn


class TestConcurrency:
    def test_concurrent_appenders_never_interleave_frames(self, tmp_path):
        journal = SessionJournal(tmp_path / "j", fsync=False)
        per_thread = 50

        def appender(worker: int) -> None:
            for sequence in range(per_thread):
                journal.append({"worker": worker, "sequence": sequence})

        threads = [
            threading.Thread(target=appender, args=(worker,))
            for worker in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        journal.close()
        records, torn = read_records(tmp_path / "j")
        assert not torn
        assert len(records) == 4 * per_thread
        # Per-writer order is preserved even though writers interleave.
        for worker in range(4):
            sequences = [
                record["sequence"] for record in records
                if record["worker"] == worker
            ]
            assert sequences == list(range(per_thread))

    def test_append_failure_counts_instead_of_raising(self, tmp_path):
        journal = SessionJournal(tmp_path / "j", fsync=False)
        assert journal.append({"unpicklable": lambda: None}) is False
        assert journal.stats()["append_errors"] == 1
        assert journal.append({"fine": 1}) is True
        journal.close()


class TestValueSpill:
    """externalize_value / resolve_value: the journal's blob-tier escape
    hatch for record fields that grow with answer volume."""

    @pytest.fixture
    def store(self, tmp_path):
        from repro.storage import DiskBlobStore

        return DiskBlobStore(
            tmp_path / "blobs", max_bytes=1 << 20, max_age_s=3600.0
        )

    def test_small_value_stays_inline(self, store):
        from repro.storage import externalize_value, resolve_value

        value = {"rows": [(1, 2)]}
        encoded, spilled = externalize_value(value, 1 << 20, store)
        assert spilled is False and encoded is value
        assert resolve_value(encoded, store) == (value, True)

    def test_large_value_round_trips_through_the_blob_tier(self, store):
        from repro.storage import BLOB_REF_KEY, externalize_value, resolve_value

        value = {"rows": [(i, "x" * 50) for i in range(200)]}
        encoded, spilled = externalize_value(value, 64, store)
        assert spilled is True
        assert BLOB_REF_KEY in encoded and encoded["bytes"] > 64
        restored, ok = resolve_value(encoded, store)
        assert ok is True and restored == value

    def test_spill_is_content_addressed(self, store):
        from repro.storage import BLOB_REF_KEY, blob_digest, externalize_value

        value = ["v"] * 1000
        encoded, spilled = externalize_value(value, 16, store)
        assert spilled
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        assert encoded[BLOB_REF_KEY] == blob_digest(payload)

    def test_zero_cap_never_spills(self, store):
        from repro.storage import externalize_value

        value = ["v"] * 1000
        assert externalize_value(value, 0, store) == (value, False)
        assert externalize_value(value, 64, None) == (value, False)

    def test_missing_blob_resolves_to_not_ok(self, store):
        from repro.storage import BLOB_REF_KEY, resolve_value

        encoded = {BLOB_REF_KEY: "0" * 64, "bytes": 999}
        assert resolve_value(encoded, store) == (None, False)
        assert resolve_value(encoded, None) == (None, False)

    def test_corrupt_spill_reads_as_a_miss(self, store, tmp_path):
        from repro.storage import externalize_value, resolve_value

        value = ["v"] * 1000
        encoded, spilled = externalize_value(value, 16, store)
        assert spilled
        # Flip bytes in the stored blob: verify-on-read must reject it.
        blob_files = list((tmp_path / "blobs").rglob("*"))
        blob_file = [p for p in blob_files if p.is_file()][0]
        blob_file.write_bytes(b"corrupted beyond recognition")
        assert resolve_value(encoded, store) == (None, False)

    def test_failed_put_keeps_value_inline(self, store):
        from repro.storage import externalize_value

        class RefusingStore:
            def put(self, digest, payload):
                return False

        value = ["v"] * 1000
        # Durability beats the size cap: an unwritable store never
        # drops the value from the record.
        assert externalize_value(value, 16, RefusingStore()) == (value, False)
