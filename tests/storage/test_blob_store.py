"""Property and unit tests for the content-addressed blob tier.

The :class:`~repro.storage.blob.DiskBlobStore` contract the distributed
data plane leans on:

* **round-trip** — ``put(digest, payload)`` then ``get(digest)`` returns
  the exact bytes, for any payload, and the digest is a pure function of
  the content (digest-stable);
* **budgets** — after an eviction sweep the tier never exceeds its size
  budget (modulo the single-newest-entry exemption that prevents resend
  thrash), and entries older than the age budget are gone;
* **corruption** — a torn or bit-rotten file reads as a *miss* and is
  deleted, so the coordinator's miss path re-ships the bytes; a wrong
  read is impossible because the digest is the address.
"""

import os
import tempfile
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import DiskBlobStore, blob_digest


@pytest.fixture
def store(tmp_path):
    return DiskBlobStore(tmp_path / "blobs", max_bytes=1 << 20, max_age_s=3600.0)


def put(store, payload: bytes) -> str:
    digest = blob_digest(payload)
    assert store.put(digest, payload)
    return digest


class TestRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(payload=st.binary(min_size=0, max_size=4096))
    def test_put_get_round_trips_any_payload(self, payload):
        with tempfile.TemporaryDirectory() as tmp:
            store = DiskBlobStore(Path(tmp) / "blobs")
            digest = put(store, payload)
            assert store.has(digest)
            assert store.get(digest) == payload
            # Digest-stable: the address is a pure function of the content.
            assert blob_digest(payload) == digest

    def test_get_of_unknown_digest_is_a_miss(self, store):
        assert store.get("0" * 64) is None
        assert not store.has("0" * 64)
        assert store.misses == 1

    def test_put_rejects_mismatched_digest(self, store):
        assert not store.put("0" * 64, b"these bytes hash differently")
        assert store.errors == 1
        assert store.get("0" * 64) is None

    def test_reput_of_live_entry_is_idempotent(self, store):
        payload = b"x" * 100
        digest = put(store, payload)
        assert store.put(digest, payload)
        assert store.get(digest) == payload
        assert store.puts == 1  # second put touched, did not rewrite


class TestCorruption:
    def test_corrupt_entry_reads_as_miss_and_is_deleted(self, store):
        payload = b"payload" * 100
        digest = put(store, payload)
        path = store._path(digest)
        path.write_bytes(b"bit rot ate this file")
        assert store.get(digest) is None
        assert store.corrupt == 1
        assert not path.exists()
        # Delete-and-refetch: a re-put repairs the entry completely.
        assert store.put(digest, payload)
        assert store.get(digest) == payload

    def test_truncated_entry_reads_as_miss(self, store):
        payload = os.urandom(512)
        digest = put(store, payload)
        path = store._path(digest)
        path.write_bytes(payload[:100])
        assert store.get(digest) is None
        assert not store.has(digest)


class TestBudgets:
    @settings(max_examples=25, deadline=None)
    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=2048), min_size=1,
                       max_size=12),
        budget=st.integers(min_value=1, max_value=4096),
    )
    def test_size_budget_never_exceeded_after_sweep(self, sizes, budget):
        with tempfile.TemporaryDirectory() as tmp:
            store = DiskBlobStore(
                Path(tmp) / "blobs", max_bytes=budget, max_age_s=0.0
            )
            for index, size in enumerate(sizes):
                put(store, bytes([index % 256]) * size)
            store.evict()
            entries = store._scan()
            total = sum(size for _, size, _ in entries)
            # The newest entry is exempt from the size sweep (an oversize
            # blob must survive to its register), so either the budget
            # holds or exactly one (over-budget) entry remains.
            assert total <= budget or len(entries) == 1

    def test_age_budget_expires_untouched_entries(self, tmp_path):
        store = DiskBlobStore(tmp_path / "blobs", max_bytes=1 << 20, max_age_s=60.0)
        old = put(store, b"old entry" * 50)
        fresh = put(store, b"fresh entry" * 50)
        ancient = time.time() - 3600.0
        os.utime(store._path(old), (ancient, ancient))
        store.evict()
        assert not store.has(old)
        assert store.has(fresh)

    def test_size_sweep_evicts_least_recently_used_first(self, tmp_path):
        store = DiskBlobStore(tmp_path / "blobs", max_bytes=250, max_age_s=0.0)
        first = put(store, b"a" * 100)
        second = put(store, b"b" * 100)
        third = put(store, b"c" * 100)
        now = time.time()
        for age, digest in ((30.0, first), (20.0, second), (10.0, third)):
            stamp = now - age
            os.utime(store._path(digest), (stamp, stamp))
        # Reading refreshes LRU position: the oldest-written entry
        # survives because it was touched most recently.
        assert store.get(first) == b"a" * 100
        store.evict()
        assert store.has(first)
        assert store.has(third)
        assert not store.has(second)

    def test_clear_removes_everything(self, store):
        digests = [put(store, bytes([i]) * 200) for i in range(5)]
        assert store.clear() == 5
        assert all(not store.has(d) for d in digests)
        assert store.stats()["entries"] == 0


class TestStats:
    def test_stats_report_entries_bytes_and_counters(self, store):
        put(store, b"x" * 300)
        store.get(blob_digest(b"x" * 300))
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["bytes"] == 300
        assert stats["hits"] == 1
        assert stats["puts"] == 1
        assert stats["root"].endswith("blobs")

    def test_stats_never_create_the_directory(self, tmp_path):
        root = tmp_path / "never-created"
        stats = DiskBlobStore(root).stats()
        assert stats["entries"] == 0
        assert not root.exists()
