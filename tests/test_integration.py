"""Cross-module integration tests: random queries, every planner, exact results.

The strongest invariant in the repository: for ANY connected theta-join
query, all four planners must produce exactly the reference answer.
Hypothesis generates random join graphs (chains, stars, cycles, mixed
operators, offsets) and random data.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import HivePlanner, PigPlanner, YSmartPlanner
from repro.core.executor import PlanExecutor
from repro.core.planner import ThetaJoinPlanner
from repro.joins.reference import join_result_signature, reference_join
from repro.mapreduce.config import ClusterConfig
from repro.mapreduce.runtime import SimulatedCluster
from repro.relational.predicates import JoinCondition
from repro.relational.query import JoinQuery
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.utils import make_rng

OPERATORS = ["<", "<=", "=", ">=", ">", "!="]


def random_query(seed: int, num_relations: int, shape: str) -> JoinQuery:
    rng = make_rng("integration", seed, num_relations, shape)
    schema = Schema.of("id:int", "v:int", "g:int")
    relations = {}
    for index in range(num_relations):
        alias = f"r{index}"
        rows = rng.randint(8, 16)
        relations[alias] = Relation(
            f"IR{seed}_{index}",
            schema,
            [
                (i, rng.randint(0, 12), rng.randint(0, 3))
                for i in range(rows)
            ],
        )
    conditions = []
    cid = 0

    def edge(a: str, b: str):
        nonlocal cid
        cid += 1
        op = rng.choice(OPERATORS)
        attr = rng.choice(["v", "g"])
        offset = rng.choice(["", " + 2", " - 1"]) if op not in ("=", "!=") else ""
        return JoinCondition.parse(cid, f"{a}.{attr}{offset} {op} {b}.{attr}")

    aliases = sorted(relations)
    if shape == "chain":
        for a, b in zip(aliases, aliases[1:]):
            conditions.append(edge(a, b))
    elif shape == "star":
        for other in aliases[1:]:
            conditions.append(edge(aliases[0], other))
    else:  # cycle
        for a, b in zip(aliases, aliases[1:]):
            conditions.append(edge(a, b))
        if num_relations > 2:
            conditions.append(edge(aliases[-1], aliases[0]))
    return JoinQuery(f"rand-{seed}-{shape}", relations, conditions)


ALL_PLANNERS = [ThetaJoinPlanner, HivePlanner, PigPlanner, YSmartPlanner]


class TestRandomQueriesAllPlanners:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_relations=st.integers(min_value=2, max_value=4),
        shape=st.sampled_from(["chain", "star", "cycle"]),
    )
    @settings(max_examples=12, deadline=None)
    def test_every_planner_exact(self, seed, num_relations, shape):
        query = random_query(seed, num_relations, shape)
        reference = join_result_signature(reference_join(query))
        config = ClusterConfig()
        for planner_cls in ALL_PLANNERS:
            plan = planner_cls(config).plan(query)
            outcome = PlanExecutor(SimulatedCluster(config)).execute(plan, query)
            got = join_result_signature(outcome.composites)
            assert got == reference, (
                f"{planner_cls.__name__} wrong on {query.name}: "
                f"missing={len(reference - got)}, extra={len(got - reference)}"
            )

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=6, deadline=None)
    def test_constrained_cluster_exact(self, seed):
        query = random_query(seed, 3, "chain")
        reference = join_result_signature(reference_join(query))
        config = ClusterConfig().with_units(8)
        for planner_cls in (ThetaJoinPlanner, YSmartPlanner):
            plan = planner_cls(config).plan(query)
            outcome = PlanExecutor(SimulatedCluster(config)).execute(plan, query)
            assert join_result_signature(outcome.composites) == reference


class TestSelfJoinIntegration:
    def test_self_join_three_aliases(self):
        """The mobile queries' pattern: one relation, several aliases."""
        rng = make_rng("selfjoin-integration")
        schema = Schema.of("id:int", "v:int", "g:int")
        base = Relation(
            "BASE", schema,
            [(i, rng.randint(0, 10), rng.randint(0, 2)) for i in range(14)],
        )
        query = JoinQuery(
            "self3",
            {"t1": base, "t2": base, "t3": base},
            [
                JoinCondition.parse(1, "t1.v <= t2.v"),
                JoinCondition.parse(2, "t2.g = t3.g"),
            ],
        )
        reference = join_result_signature(reference_join(query))
        config = ClusterConfig()
        for planner_cls in ALL_PLANNERS:
            plan = planner_cls(config).plan(query)
            outcome = PlanExecutor(SimulatedCluster(config)).execute(plan, query)
            assert join_result_signature(outcome.composites) == reference


class TestDeterminism:
    def test_same_query_same_plan_and_result(self):
        query = random_query(42, 3, "chain")
        config = ClusterConfig()
        plans = [ThetaJoinPlanner(config).plan(query) for _ in range(2)]
        assert plans[0].describe() == plans[1].describe()
        outcomes = [
            PlanExecutor(SimulatedCluster(config)).execute(plan, query)
            for plan in plans
        ]
        assert (
            outcomes[0].report.makespan_s == outcomes[1].report.makespan_s
        )
