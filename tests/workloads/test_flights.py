"""Tests for the travel-planning (flight itinerary) workload."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.joins.reference import reference_join
from repro.joins.records import rows_by_alias
from repro.relational.predicates import ThetaOp
from repro.workloads.flights import (
    DAY_MINUTES,
    DEFAULT_STAYOVER,
    StayOver,
    flight_schema,
    generate_flight_leg,
    stayover_condition,
    travel_plan_query,
)


class TestStayOver:
    def test_valid_window(self):
        window = StayOver(30.0, 120.0)
        assert window.min_minutes == 30.0

    def test_negative_lower_rejected(self):
        with pytest.raises(QueryError):
            StayOver(-1.0, 60.0)

    def test_empty_window_rejected(self):
        with pytest.raises(QueryError):
            StayOver(60.0, 60.0)
        with pytest.raises(QueryError):
            StayOver(60.0, 30.0)


class TestSchema:
    def test_three_fields(self):
        schema = flight_schema()
        assert [f.name for f in schema.fields] == ["fno", "dt", "at"]

    def test_inflated_width(self):
        schema = flight_schema(bytes_per_row=3000)
        assert schema.row_width >= 2900


class TestGenerator:
    def test_row_count(self):
        leg = generate_flight_leg("FI_a_b", 40)
        assert len(leg) == 40

    def test_arrival_after_departure(self):
        leg = generate_flight_leg("FI_a_b", 100, duration_minutes=90.0)
        for fno, depart, arrive in leg:
            assert arrive > depart
            # +/-20% jitter around the nominal duration.
            assert 0.75 * 90 <= arrive - depart <= 1.25 * 90

    def test_departures_inside_horizon(self):
        horizon = 3 * DAY_MINUTES
        leg = generate_flight_leg("FI_a_b", 200, horizon_minutes=horizon)
        for _fno, depart, _arrive in leg:
            assert 0 <= depart < horizon

    def test_deterministic_by_seed(self):
        a = generate_flight_leg("FI_a_b", 30, seed=7)
        b = generate_flight_leg("FI_a_b", 30, seed=7)
        c = generate_flight_leg("FI_a_b", 30, seed=8)
        assert a.rows == b.rows
        assert a.rows != c.rows

    def test_flight_numbers_are_indices(self):
        leg = generate_flight_leg("FI_a_b", 25)
        assert [row[0] for row in leg] == list(range(25))

    def test_invalid_parameters(self):
        with pytest.raises(QueryError):
            generate_flight_leg("x", 0)
        with pytest.raises(QueryError):
            generate_flight_leg("x", 10, duration_minutes=0)
        with pytest.raises(QueryError):
            generate_flight_leg("x", 10, horizon_minutes=100)


class TestStayoverCondition:
    def test_two_sided_window(self):
        condition = stayover_condition(1, "leg1", "leg2", StayOver(30, 240))
        assert len(condition.predicates) == 2
        assert all(p.op is ThetaOp.LT for p in condition.predicates)

    def test_semantics(self):
        """The condition accepts exactly layovers inside (l1, l2)."""
        condition = stayover_condition(1, "leg1", "leg2", StayOver(30, 240))
        schema = flight_schema()
        schemas = {"leg1": schema, "leg2": schema}

        def ok(arrive, depart):
            rows = {"leg1": (0, 0, arrive), "leg2": (1, depart, depart + 60)}
            return condition.evaluate(rows, schemas)

        assert ok(600, 700)          # 100-minute layover
        assert not ok(600, 620)      # too short (20 < 30)
        assert not ok(600, 900)      # too long (300 > 240)
        assert not ok(600, 630)      # boundary is strict
        assert not ok(600, 840)      # boundary is strict


class TestTravelPlanQuery:
    def test_structure(self):
        query = travel_plan_query(["HKG", "SIN", "NRT"], flights_per_leg=20)
        assert len(query.aliases) == 2
        assert len(query.conditions) == 1
        assert query.relations["leg1"].name == "FI_HKG_SIN"
        assert query.relations["leg2"].name == "FI_SIN_NRT"

    def test_chain_shape(self):
        """Every condition links consecutive legs: a chain join graph."""
        query = travel_plan_query(
            ["a", "b", "c", "d", "e"], flights_per_leg=10
        )
        assert len(query.conditions) == 3
        for index, condition in enumerate(query.conditions):
            assert set(condition.aliases) == {f"leg{index + 1}", f"leg{index + 2}"}

    def test_validation(self):
        with pytest.raises(QueryError):
            travel_plan_query(["a", "b"])  # only one leg
        with pytest.raises(QueryError):
            travel_plan_query(["a", "b", "a"])  # repeated city
        with pytest.raises(QueryError):
            travel_plan_query(["a", "b", "c"], stayovers=[])  # wrong count

    def test_results_satisfy_stayover_windows(self):
        """Ground-truth check: every reference-join itinerary respects the
        stay-over windows, and layover-violating pairs are excluded."""
        windows = [StayOver(45, 360)]
        query = travel_plan_query(
            ["HKG", "SIN", "NRT"],
            flights_per_leg=40,
            stayovers=windows,
            seed=3,
        )
        results = reference_join(query)
        assert results, "expected at least one valid itinerary"
        for composite in results:
            rows = rows_by_alias(composite)
            arrive = rows["leg1"][2]
            depart = rows["leg2"][1]
            layover = depart - arrive
            assert windows[0].min_minutes < layover < windows[0].max_minutes

    def test_tight_window_prunes_results(self):
        loose = travel_plan_query(
            ["a", "b", "c"], flights_per_leg=40,
            stayovers=[StayOver(30, 720)], seed=5,
        )
        tight = travel_plan_query(
            ["a", "b", "c"], flights_per_leg=40,
            stayovers=[StayOver(30, 60)], seed=5,
        )
        assert len(reference_join(tight)) <= len(reference_join(loose))

    def test_default_stayover_used(self):
        query = travel_plan_query(["a", "b", "c", "d"], flights_per_leg=5)
        for condition in query.conditions:
            offsets = sorted(
                p.left.offset + p.right.offset for p in condition.predicates
            )
            assert offsets == sorted(
                [DEFAULT_STAYOVER.min_minutes, DEFAULT_STAYOVER.max_minutes]
            )


class TestEndToEnd:
    def test_planner_answer_matches_reference(self):
        """The full paper pipeline on the intro scenario gives the same
        itinerary set as the nested-loop oracle."""
        from repro.core.executor import PlanExecutor
        from repro.core.planner import ThetaJoinPlanner
        from repro.mapreduce.config import ClusterConfig
        from repro.mapreduce.runtime import SimulatedCluster

        query = travel_plan_query(
            ["HKG", "SIN", "NRT", "SFO"], flights_per_leg=25, seed=11
        )
        config = ClusterConfig().with_units(8)
        plan = ThetaJoinPlanner(config).plan(query)
        outcome = PlanExecutor(SimulatedCluster(config)).execute(plan, query)
        expected = reference_join(query)
        assert outcome.report.output_records == len(expected)
        assert sorted(outcome.composites) == expected


@st.composite
def window_strategy(draw):
    lo = draw(st.floats(min_value=0, max_value=300))
    width = draw(st.floats(min_value=1, max_value=800))
    return StayOver(lo, lo + width)


class TestProperties:
    @given(window_strategy(), st.integers(min_value=2, max_value=40))
    @settings(max_examples=20, deadline=None)
    def test_reference_results_always_respect_window(self, window, flights):
        query = travel_plan_query(
            ["x", "y", "z"], flights_per_leg=flights,
            stayovers=[window], seed=1,
        )
        for composite in reference_join(query):
            rows = rows_by_alias(composite)
            layover = rows["leg2"][1] - rows["leg1"][2]
            assert window.min_minutes < layover < window.max_minutes

    @given(st.integers(min_value=3, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_leg_count_tracks_city_count(self, num_cities):
        cities = [f"c{i}" for i in range(num_cities)]
        query = travel_plan_query(cities, flights_per_leg=4)
        assert len(query.aliases) == num_cities - 1
        assert len(query.conditions) == num_cities - 2
