"""Tests for the mobile CDR workload generator and queries Q1-Q4."""

import pytest

from repro.errors import QueryError
from repro.workloads.mobile import (
    MOBILE_QUERY_IDS,
    NUM_DAYS,
    generate_mobile_calls,
    make_mobile_query,
    mobile_benchmark_query,
    mobile_query_features,
    mobile_schema,
)


class TestGenerator:
    def test_schema_fields(self):
        assert mobile_schema().names == ("id", "d", "bt", "l", "bsc")

    def test_inflated_width(self):
        schema = mobile_schema(bytes_per_row=1000)
        assert abs(schema.row_width - 1000) < 20

    def test_row_domains(self):
        calls = generate_mobile_calls(300, num_stations=10, seed=1)
        for user, day, begin, length, station in calls:
            assert 1 <= day <= NUM_DAYS
            assert 0 <= begin < 86400
            assert length >= 5
            assert 0 <= station < 10

    def test_deterministic(self):
        a = generate_mobile_calls(50, seed=7)
        b = generate_mobile_calls(50, seed=7)
        assert a.rows == b.rows

    def test_diurnal_pattern_visible(self):
        """Calls at 19-20h must clearly outnumber calls at 3-4h."""
        calls = generate_mobile_calls(3000, seed=2)
        hours = [row[2] // 3600 for row in calls]
        evening = sum(1 for h in hours if h in (19, 20))
        night = sum(1 for h in hours if h in (3, 4))
        assert evening > 3 * max(night, 1)

    def test_station_skew(self):
        """Station popularity is Zipf-ish: the top station dominates."""
        calls = generate_mobile_calls(3000, num_stations=20, seed=3)
        from collections import Counter

        counts = Counter(row[4] for row in calls)
        top = counts.most_common(1)[0][1]
        assert top > 2 * (3000 / 20)

    def test_rejects_zero_rows(self):
        with pytest.raises(QueryError):
            generate_mobile_calls(0)


class TestQueries:
    @pytest.mark.parametrize("qid", MOBILE_QUERY_IDS)
    def test_query_builds(self, qid):
        calls = generate_mobile_calls(30, seed=1)
        query = make_mobile_query(qid, calls)
        assert query.name == f"mobile-Q{qid}"
        expected_relations = 3 if qid in (1, 2) else 4
        assert len(query.relations) == expected_relations

    def test_unknown_query_id(self):
        calls = generate_mobile_calls(10, seed=1)
        with pytest.raises(QueryError):
            make_mobile_query(9, calls)

    def test_q2_q4_carry_ne(self):
        calls = generate_mobile_calls(20, seed=1)
        for qid in (2, 4):
            query = make_mobile_query(qid, calls)
            ops = {p.op.symbol for c in query.conditions for p in c.predicates}
            assert "!=" in ops

    def test_q3_triangle_shape(self):
        calls = generate_mobile_calls(20, seed=1)
        query = make_mobile_query(3, calls)
        pairs = {frozenset(c.aliases) for c in query.conditions}
        assert frozenset({"t1", "t3"}) in pairs  # the window edge

    def test_benchmark_scales_volume(self):
        q20 = mobile_benchmark_query(1, 20)
        q500 = mobile_benchmark_query(1, 500)
        assert q500.total_input_bytes() > q20.total_input_bytes()
        from repro.utils import GB

        assert q500.total_input_bytes() == pytest.approx(500 * GB, rel=0.02)

    def test_benchmark_rejects_unknown_volume(self):
        with pytest.raises(QueryError):
            mobile_benchmark_query(1, 77)

    @pytest.mark.parametrize("qid", MOBILE_QUERY_IDS)
    def test_features_table2_shape(self, qid):
        features = mobile_query_features(qid)
        assert features["query"] == f"Q{qid}"
        assert features["join_count"] >= 3
        assert features["inequality_ops"]


class TestQueryResultsExist:
    """The scaled-down generator must produce non-trivial results for all
    four queries, otherwise the benchmark figures degenerate."""

    @pytest.mark.parametrize("qid", MOBILE_QUERY_IDS)
    def test_nonempty_at_20gb(self, qid):
        from repro.joins.reference import reference_join

        query = mobile_benchmark_query(qid, 20)
        assert len(reference_join(query)) > 0
