"""Tests for the mini TPC-H generator and the paper's four queries."""

import pytest

from repro.errors import QueryError
from repro.workloads.tpch import (
    TPCH_QUERY_IDS,
    TPCHDatabase,
    make_tpch_query,
    tpch_benchmark_query,
    tpch_query_features,
)


@pytest.fixture(scope="module")
def db():
    return TPCHDatabase(lineitem_rows=60, seed=1)


class TestGenerator:
    def test_all_tables_present(self, db):
        tables = db.tables()
        assert set(tables) == {
            "region", "nation", "supplier", "customer",
            "part", "partsupp", "orders", "lineitem",
        }

    def test_referential_integrity(self, db):
        order_keys = set(db.orders.column("orderkey"))
        part_keys = set(db.part.column("partkey"))
        supp_keys = set(db.supplier.column("suppkey"))
        nation_keys = set(db.nation.column("nationkey"))
        region_keys = set(db.region.column("regionkey"))
        for row in db.lineitem:
            assert row[0] in order_keys
            assert row[1] in part_keys
            assert row[2] in supp_keys
        for row in db.nation:
            assert row[2] in region_keys
        for row in db.supplier:
            assert row[1] in nation_keys

    def test_date_consistency(self, db):
        """Lineitem ship/receipt dates follow their order's date."""
        dates = dict(zip(db.orders.column("orderkey"), db.orders.column("orderdate")))
        for row in db.lineitem:
            orderkey, ship, receipt = row[0], row[5], row[7]
            assert ship > dates[orderkey]
            assert receipt > ship

    def test_nation_count_is_25(self, db):
        assert db.nation.cardinality == 25

    def test_volume_scaling(self):
        from repro.utils import GB

        db200 = TPCHDatabase(volume_gb=200, seed=1)
        total = sum(r.size_bytes for r in db200.tables().values())
        assert total == pytest.approx(200 * GB, rel=0.1)
        # Lineitem dominates the bytes like in real TPC-H.
        assert db200.lineitem.size_bytes > 0.5 * total

    def test_invalid_volume_rejected(self):
        with pytest.raises(QueryError):
            TPCHDatabase(volume_gb=123)


class TestQueries:
    @pytest.mark.parametrize("qid", TPCH_QUERY_IDS)
    def test_query_builds(self, qid, db):
        query = make_tpch_query(qid, db)
        assert query.name == f"tpch-Q{qid}"

    def test_unknown_query_rejected(self, db):
        with pytest.raises(QueryError):
            make_tpch_query(99, db)

    def test_table3_shapes(self):
        """Table 3: relation counts and the inequality operators used."""
        features = {qid: tpch_query_features(qid) for qid in TPCH_QUERY_IDS}
        assert features[7]["relations"] == 6   # s, l, o, c, n1, n2
        assert features[17]["relations"] == 3
        assert features[18]["relations"] == 4
        assert features[21]["relations"] == 6
        assert "<=" in features[17]["inequality_ops"]
        assert ">=" in features[18]["inequality_ops"]
        assert "!=" in features[21]["inequality_ops"]

    @pytest.mark.parametrize("qid", TPCH_QUERY_IDS)
    def test_queries_have_inequality_amendments(self, qid):
        features = tpch_query_features(qid)
        assert features["inequality_ops"], "paper amends all four with theta"

    @pytest.mark.parametrize("qid", TPCH_QUERY_IDS)
    def test_nonempty_results_small_scale(self, qid):
        from repro.joins.reference import reference_join

        db = TPCHDatabase(lineitem_rows=40, seed=2)
        query = make_tpch_query(qid, db)
        assert len(reference_join(query)) > 0


class TestExtendedQueries:
    """Q3/Q5/Q10 — the 'almost all 21 queries' coverage beyond the four
    the paper presents."""

    from repro.workloads.tpch import TPCH_EXTENDED_QUERY_IDS

    EXTRA = tuple(sorted(set(TPCH_EXTENDED_QUERY_IDS) - set(TPCH_QUERY_IDS)))

    @pytest.mark.parametrize("qid", EXTRA)
    def test_query_builds(self, qid, db):
        query = make_tpch_query(qid, db)
        assert query.name == f"tpch-Q{qid}"

    @pytest.mark.parametrize("qid", EXTRA)
    def test_inequality_amended(self, qid):
        features = tpch_query_features(qid)
        assert features["inequality_ops"]

    def test_relation_counts(self):
        assert tpch_query_features(3)["relations"] == 3
        assert tpch_query_features(5)["relations"] == 6
        assert tpch_query_features(10)["relations"] == 4

    @pytest.mark.parametrize("qid", EXTRA)
    def test_nonempty_results_small_scale(self, qid):
        from repro.joins.reference import reference_join

        db = TPCHDatabase(lineitem_rows=40, seed=2)
        query = make_tpch_query(qid, db)
        assert len(reference_join(query)) > 0

    @pytest.mark.parametrize("qid", EXTRA)
    def test_planner_matches_oracle(self, qid):
        from repro.core.executor import PlanExecutor
        from repro.core.planner import ThetaJoinPlanner
        from repro.joins.reference import reference_join
        from repro.mapreduce.config import ClusterConfig
        from repro.mapreduce.runtime import SimulatedCluster

        db = TPCHDatabase(lineitem_rows=30, seed=3)
        query = make_tpch_query(qid, db)
        config = ClusterConfig().with_units(16)
        plan = ThetaJoinPlanner(config).plan(query)
        outcome = PlanExecutor(SimulatedCluster(config)).execute(plan, query)
        assert outcome.report.output_records == len(reference_join(query))

    def test_benchmark_query_at_volume(self):
        query = tpch_benchmark_query(17, 200)
        from repro.utils import GB

        assert query.total_input_bytes() > 100 * GB
