"""Tests for synthetic probe workloads."""

import pytest

from repro.errors import QueryError
from repro.joins.reference import reference_join
from repro.workloads.synthetic import (
    chain_query,
    controllable_selfjoin_query,
    skewed_equijoin_query,
    uniform_relation,
    zipf_relation,
)


class TestUniformRelation:
    def test_shape(self):
        relation = uniform_relation("U", 50, columns=3)
        assert relation.schema.names == ("id", "v0", "v1", "v2")
        assert relation.cardinality == 50

    def test_ids_sequential(self):
        relation = uniform_relation("U", 10)
        assert relation.column("id") == list(range(10))

    def test_inflated_rows(self):
        relation = uniform_relation("U", 10, bytes_per_row=5000)
        assert abs(relation.schema.row_width - 5000) < 50

    def test_invalid_args(self):
        with pytest.raises(QueryError):
            uniform_relation("U", 0)


class TestControllableSelfJoin:
    @pytest.mark.parametrize("target", [0.05, 0.25, 0.5, 0.75])
    def test_selectivity_dialled(self, target):
        query = controllable_selfjoin_query(120, target, seed=3)
        results = reference_join(query)
        observed = len(results) / (120 * 120)
        assert observed == pytest.approx(target, abs=0.08)

    def test_invalid_selectivity(self):
        with pytest.raises(QueryError):
            controllable_selfjoin_query(10, 0.0)
        with pytest.raises(QueryError):
            controllable_selfjoin_query(10, 1.5)


class TestChainQuery:
    def test_chain_shape(self):
        query = chain_query(4, 20, selectivity=0.3, seed=1)
        assert len(query.relations) == 4
        assert len(query.conditions) == 3
        # Consecutive relations connected.
        pairs = {frozenset(c.aliases) for c in query.conditions}
        assert frozenset({"r1", "r2"}) in pairs
        assert frozenset({"r3", "r4"}) in pairs

    def test_per_edge_selectivity_rough(self):
        query = chain_query(2, 150, selectivity=0.2, seed=2)
        results = reference_join(query)
        observed = len(results) / (150 * 150)
        assert observed == pytest.approx(0.2, abs=0.07)

    def test_needs_two_relations(self):
        with pytest.raises(QueryError):
            chain_query(1, 10)


class TestZipfRelation:
    def test_shape(self):
        relation = zipf_relation("Z", 120, distinct=30)
        assert relation.schema.names == ("id", "k", "v")
        assert relation.cardinality == 120

    def test_keys_within_domain(self):
        relation = zipf_relation("Z", 200, distinct=25, skew=1.3)
        keys = set(relation.column("k"))
        assert keys <= set(range(25))

    def test_zero_skew_is_roughly_uniform(self):
        relation = zipf_relation("Z", 3000, distinct=10, skew=0.0, seed=2)
        counts = {}
        for key in relation.column("k"):
            counts[key] = counts.get(key, 0) + 1
        top = max(counts.values()) / 3000
        assert top == pytest.approx(0.1, abs=0.04)

    def test_high_skew_concentrates_mass(self):
        relation = zipf_relation("Z", 3000, distinct=50, skew=1.8, seed=2)
        counts = {}
        for key in relation.column("k"):
            counts[key] = counts.get(key, 0) + 1
        hottest = max(counts.values()) / 3000
        assert hottest > 0.25
        # The most popular key is the first rank.
        assert max(counts, key=counts.get) == 0

    def test_skew_orders_hot_key_mass(self):
        def hottest(skew):
            relation = zipf_relation("Z", 2000, distinct=40, skew=skew, seed=3)
            counts = {}
            for key in relation.column("k"):
                counts[key] = counts.get(key, 0) + 1
            return max(counts.values())

        assert hottest(0.0) < hottest(1.0) < hottest(1.8)

    def test_deterministic(self):
        a = zipf_relation("Z", 60, seed=5)
        b = zipf_relation("Z", 60, seed=5)
        assert a.rows == b.rows

    def test_validation(self):
        with pytest.raises(QueryError):
            zipf_relation("Z", 0)
        with pytest.raises(QueryError):
            zipf_relation("Z", 10, distinct=0)
        with pytest.raises(QueryError):
            zipf_relation("Z", 10, skew=-0.5)

    def test_inflated_row_width(self):
        relation = zipf_relation("Z", 10, bytes_per_row=1500)
        assert relation.schema.row_width >= 1400


class TestSkewedEquijoinQuery:
    def test_structure(self):
        query = skewed_equijoin_query(50, skew=1.0)
        assert set(query.aliases) == {"a", "b"}
        assert len(query.conditions) == 1
        ops = {p.op.symbol for p in query.conditions[0].predicates}
        assert ops == {"=", "<="}

    def test_output_grows_with_skew(self):
        """Hot keys multiply matching pairs: more skew, more output."""
        low = skewed_equijoin_query(150, skew=0.0, seed=1)
        high = skewed_equijoin_query(150, skew=1.6, seed=1)
        assert len(reference_join(high)) > len(reference_join(low))

    def test_executable_by_planner(self):
        from repro.core.executor import PlanExecutor
        from repro.core.planner import ThetaJoinPlanner
        from repro.mapreduce.config import ClusterConfig
        from repro.mapreduce.runtime import SimulatedCluster

        query = skewed_equijoin_query(40, skew=1.2, seed=2)
        config = ClusterConfig().with_units(8)
        plan = ThetaJoinPlanner(config).plan(query)
        outcome = PlanExecutor(SimulatedCluster(config)).execute(plan, query)
        assert outcome.report.output_records == len(reference_join(query))
