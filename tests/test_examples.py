"""Smoke tests: every example script must run end to end.

Examples are the public-API contract in executable form; a refactor that
breaks one should fail the test suite, not a user.  Heavier examples are
exercised through their importable pieces to keep the suite fast.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestQuickstart:
    def test_runs_and_compares_methods(self):
        out = run_example("quickstart.py")
        assert "ours" in out


class TestTravelPlanner:
    def test_finds_itineraries(self):
        out = run_example("travel_planner.py")
        assert "itineraries" in out
        assert "[ours]" in out and "[ysmart]" in out


class TestSkewStudy:
    def test_prints_balance_table(self):
        out = run_example("skew_study.py")
        assert "max/mean" in out
        assert "hypercube" in out


class TestImportableMains:
    """The heavier examples at least import cleanly and expose main()."""

    @pytest.mark.parametrize(
        "name",
        ["mobile_analytics", "tpch_analytics", "plan_explorer"],
    )
    def test_module_shape(self, name):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            name, EXAMPLES / f"{name}.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert callable(module.main)
