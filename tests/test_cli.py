"""Tests for the command-line interface."""

import pytest

from repro.cli import build_query, cluster_config, main, make_parser


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args([])

    def test_defaults(self):
        args = make_parser().parse_args(["run"])
        assert args.workload == "mobile"
        assert args.method == "ours"
        assert args.kp == 96

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["run", "--method", "spark"])


class TestHelpers:
    def test_build_query_mobile(self):
        query = build_query("mobile", 1, 20, seed=0)
        assert query.name == "mobile-Q1"

    def test_build_query_tpch(self):
        query = build_query("tpch", 17, 200, seed=0)
        assert query.name == "tpch-Q17"

    def test_build_query_unknown(self):
        with pytest.raises(SystemExit):
            build_query("spark", 1, 20, seed=0)

    def test_cluster_config_kp(self):
        assert cluster_config(96).total_units == 96
        assert cluster_config(64).total_units == 64


class TestCommands:
    def test_plan_command(self, capsys):
        assert main(["plan", "--workload", "mobile", "--query", "1",
                     "--volume", "20"]) == 0
        out = capsys.readouterr().out
        assert "Plan mobile-Q1-ours" in out

    def test_run_command(self, capsys):
        assert main(["run", "--workload", "mobile", "--query", "1",
                     "--volume", "20", "--method", "hive"]) == 0
        out = capsys.readouterr().out
        assert "result rows" in out

    def test_compare_command(self, capsys):
        assert main(["compare", "--workload", "mobile", "--query", "1",
                     "--volume", "20"]) == 0
        out = capsys.readouterr().out
        assert "all methods agree" in out

    def test_explain_command(self, capsys):
        assert main(["explain", "--workload", "mobile", "--query", "1",
                     "--volume", "20"]) == 0
        out = capsys.readouterr().out
        assert "Join graph GJ" in out
        assert "G'JP:" in out
        assert "Chosen plan" in out

    def test_sql_command(self, capsys):
        sql = ("SELECT t2.id FROM table t1, table t2 "
               "WHERE t1.d = t2.d AND t1.bt <= t2.bt")
        assert main(["sql", sql, "--workload", "mobile"]) == 0
        out = capsys.readouterr().out
        assert "result rows" in out
        assert "adhoc" in out

    def test_sql_command_tpch(self, capsys):
        sql = ("SELECT l.orderkey FROM lineitem l, orders o "
               "WHERE l.orderkey = o.orderkey AND l.shipdate >= o.orderdate")
        assert main(["sql", sql, "--workload", "tpch", "--method", "hive"]) == 0
        out = capsys.readouterr().out
        assert "result rows" in out

    def test_sql_rejects_bad_query(self):
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            main(["sql", "DELETE FROM table", "--workload", "mobile"])


class TestWorkloadRelations:
    def test_mobile_names(self):
        from repro.cli import workload_relations

        relations = workload_relations("mobile", 20, seed=0)
        assert set(relations) == {"table", "calls"}
        assert relations["table"] is relations["calls"]

    def test_tpch_names(self):
        from repro.cli import workload_relations

        relations = workload_relations("tpch", 0, seed=0)
        assert "lineitem" in relations and "orders" in relations

    def test_unknown_workload(self):
        from repro.cli import workload_relations

        with pytest.raises(SystemExit):
            workload_relations("spark", 0, seed=0)
