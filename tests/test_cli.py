"""Tests for the command-line interface."""

import pytest

from repro.cli import build_query, cluster_config, main, make_parser
from repro.relational.stats_cache import reset_default_planning_cache


@pytest.fixture(autouse=True)
def _isolated_cli_environment(tmp_path, monkeypatch):
    """``main`` maps CLI flags onto ``REPRO_*`` env (and turns the disk
    planning cache on by default); keep both effects inside the test —
    writes go to a tmp dir and the default cache is rebuilt from the
    restored environment afterwards."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_PLAN_DISK_CACHE", "1")
    # Pre-touch the backend keys so monkeypatch restores them even when a
    # test's --backend/--workers flags overwrite them inside ``main``.
    monkeypatch.setenv("REPRO_EXEC_BACKEND", "serial")
    monkeypatch.setenv("REPRO_EXEC_WORKERS", "0")
    reset_default_planning_cache()
    yield
    reset_default_planning_cache()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args([])

    def test_defaults(self):
        args = make_parser().parse_args(["run"])
        assert args.workload == "mobile"
        assert args.method == "ours"
        assert args.kp == 96

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["run", "--method", "spark"])


class TestHelpers:
    def test_build_query_mobile(self):
        query = build_query("mobile", 1, 20, seed=0)
        assert query.name == "mobile-Q1"

    def test_build_query_tpch(self):
        query = build_query("tpch", 17, 200, seed=0)
        assert query.name == "tpch-Q17"

    def test_build_query_unknown(self):
        with pytest.raises(SystemExit):
            build_query("spark", 1, 20, seed=0)

    def test_cluster_config_kp(self):
        assert cluster_config(96).total_units == 96
        assert cluster_config(64).total_units == 64


class TestCommands:
    def test_plan_command(self, capsys):
        assert main(["plan", "--workload", "mobile", "--query", "1",
                     "--volume", "20"]) == 0
        out = capsys.readouterr().out
        assert "Plan mobile-Q1-ours" in out

    def test_run_command(self, capsys):
        assert main(["run", "--workload", "mobile", "--query", "1",
                     "--volume", "20", "--method", "hive"]) == 0
        out = capsys.readouterr().out
        assert "result rows" in out

    def test_compare_command(self, capsys):
        assert main(["compare", "--workload", "mobile", "--query", "1",
                     "--volume", "20"]) == 0
        out = capsys.readouterr().out
        assert "all methods agree" in out

    def test_explain_command(self, capsys):
        assert main(["explain", "--workload", "mobile", "--query", "1",
                     "--volume", "20"]) == 0
        out = capsys.readouterr().out
        assert "Join graph GJ" in out
        assert "G'JP:" in out
        assert "Chosen plan" in out

    def test_sql_command(self, capsys):
        sql = ("SELECT t2.id FROM table t1, table t2 "
               "WHERE t1.d = t2.d AND t1.bt <= t2.bt")
        assert main(["sql", sql, "--workload", "mobile"]) == 0
        out = capsys.readouterr().out
        assert "result rows" in out
        assert "adhoc" in out

    def test_sql_command_tpch(self, capsys):
        sql = ("SELECT l.orderkey FROM lineitem l, orders o "
               "WHERE l.orderkey = o.orderkey AND l.shipdate >= o.orderdate")
        assert main(["sql", sql, "--workload", "tpch", "--method", "hive"]) == 0
        out = capsys.readouterr().out
        assert "result rows" in out

    def test_sql_rejects_bad_query(self):
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            main(["sql", "DELETE FROM table", "--workload", "mobile"])


class TestExecutionFlags:
    def test_backend_flag_applies_then_restores(self, capsys):
        import os

        from repro import cli

        seen = {}

        def spying_cmd_run(args):
            seen["backend"] = os.environ.get("REPRO_EXEC_BACKEND")
            seen["workers"] = os.environ.get("REPRO_EXEC_WORKERS")
            return cli.cmd_run(args)

        args = cli.make_parser().parse_args(
            ["--backend", "process", "--workers", "2",
             "run", "--workload", "mobile", "--query", "1", "--volume", "20"]
        )
        args.func = spying_cmd_run
        restore = cli.apply_execution_flags(args)
        try:
            assert args.func(args) == 0
        finally:
            restore()
        # The command ran under the mapped environment...
        assert seen == {"backend": "process", "workers": "2"}
        # ...and main-style restoration undid the mutation (the fixture
        # pinned serial/0 before the call).
        assert os.environ["REPRO_EXEC_BACKEND"] == "serial"
        assert os.environ["REPRO_EXEC_WORKERS"] == "0"
        assert "result rows" in capsys.readouterr().out

    def test_workers_alone_selects_process(self, monkeypatch):
        import os

        from repro.cli import apply_execution_flags, make_parser

        monkeypatch.delenv("REPRO_EXEC_BACKEND", raising=False)
        args = make_parser().parse_args(["--workers", "4", "run"])
        restore = apply_execution_flags(args)
        try:
            assert os.environ["REPRO_EXEC_BACKEND"] == "process"
            assert os.environ["REPRO_EXEC_WORKERS"] == "4"
        finally:
            restore()
        assert "REPRO_EXEC_BACKEND" not in os.environ

    def test_backend_runs_match_serial(self, capsys):
        assert main(["run", "--workload", "mobile", "--query", "1",
                     "--volume", "20"]) == 0
        serial_out = capsys.readouterr().out
        assert main(["--backend", "process", "--workers", "2",
                     "run", "--workload", "mobile", "--query", "1",
                     "--volume", "20"]) == 0
        process_out = capsys.readouterr().out
        assert process_out == serial_out

    def test_disk_cache_written_to_cache_dir(self, tmp_path):
        target = tmp_path / "explicit-cache"
        assert main(["--cache-dir", str(target),
                     "plan", "--workload", "mobile", "--query", "1",
                     "--volume", "20"]) == 0
        assert list(target.glob("planning/*/*.pkl"))

    def test_no_disk_cache_flag(self, tmp_path, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_PLAN_DISK_CACHE", raising=False)
        target = tmp_path / "never-written"
        assert main(["--no-disk-cache", "--cache-dir", str(target),
                     "plan", "--workload", "mobile", "--query", "1",
                     "--volume", "20"]) == 0
        assert not target.exists()
        # main() restored the pre-call environment (variable was absent).
        assert "REPRO_PLAN_DISK_CACHE" not in os.environ

    def test_main_restores_library_defaults(self, monkeypatch):
        """A library caller invoking main() must not inherit CLI env
        defaults afterwards — the default planning cache stays opt-in."""
        import os

        from repro.relational.stats_cache import get_planning_cache

        monkeypatch.delenv("REPRO_PLAN_DISK_CACHE", raising=False)
        assert main(["plan", "--workload", "mobile", "--query", "1",
                     "--volume", "20"]) == 0
        assert "REPRO_PLAN_DISK_CACHE" not in os.environ
        assert get_planning_cache().disk is None


class TestWorkersAddrsFlag:
    def test_addrs_alone_select_distributed(self, monkeypatch):
        import os

        from repro.cli import apply_execution_flags, make_parser

        monkeypatch.delenv("REPRO_EXEC_BACKEND", raising=False)
        monkeypatch.delenv("REPRO_WORKERS_ADDRS", raising=False)
        args = make_parser().parse_args(
            ["--workers-addrs", "127.0.0.1:7601,127.0.0.1:7602", "run"]
        )
        restore = apply_execution_flags(args)
        try:
            assert os.environ["REPRO_EXEC_BACKEND"] == "distributed"
            assert (
                os.environ["REPRO_WORKERS_ADDRS"]
                == "127.0.0.1:7601,127.0.0.1:7602"
            )
        finally:
            restore()
        assert "REPRO_EXEC_BACKEND" not in os.environ
        assert "REPRO_WORKERS_ADDRS" not in os.environ

    def test_unreachable_workers_still_run_correctly(self, capsys):
        """No daemon listening: the distributed backend must degrade to
        serial and the command must still produce the serial answer."""
        assert main(["run", "--workload", "mobile", "--query", "1",
                     "--volume", "20"]) == 0
        serial_out = capsys.readouterr().out
        # --backend is explicit: the test fixture pins REPRO_EXEC_BACKEND
        # in the environment, and explicit env wins over flag inference.
        assert main(["--backend", "distributed", "--workers-addrs", "127.0.0.1:1",
                     "run", "--workload", "mobile", "--query", "1",
                     "--volume", "20"]) == 0
        captured = capsys.readouterr()
        assert captured.out == serial_out
        assert "degraded to serial" in captured.err


class TestCacheCommand:
    def run_plan(self, cache_dir):
        assert main(["--cache-dir", str(cache_dir),
                     "plan", "--workload", "mobile", "--query", "1",
                     "--volume", "20"]) == 0

    def test_stats_reports_entries_and_bytes(self, tmp_path, capsys):
        target = tmp_path / "cache"
        self.run_plan(target)
        capsys.readouterr()
        assert main(["--cache-dir", str(target), "cache", "stats"]) == 0
        out = capsys.readouterr().out
        # Both tiers report through the unified storage API (PR 8).
        assert str(target / "planning") in out
        assert str(target / "blobs") in out
        for table in ("samples", "stats", "joins", "total"):
            assert table in out
        # The plan above cached at least one sample/statistics entry.
        planning_total = next(
            line for line in out.splitlines() if line.strip().startswith("total")
        )
        assert "   0 entries" not in planning_total

    def test_stats_on_empty_cache(self, tmp_path, capsys):
        target = tmp_path / "nothing-here"
        assert main(["--cache-dir", str(target), "cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "total" in out and "0 entries" in out
        assert not target.exists()  # stats must not create the directory

    def test_stats_on_missing_dir_reports_every_tier_zeroed(
        self, tmp_path, capsys
    ):
        target = tmp_path / "never-created"
        assert main(["--cache-dir", str(target), "cache", "stats"]) == 0
        out = capsys.readouterr().out
        for tier in ("planning", "checkpoints", "blobs"):
            assert str(target / tier) in out
        assert out.count("0 entr") >= 3  # every tier totals to zero
        assert not target.exists()

    def test_clear_on_missing_dir_creates_nothing(self, tmp_path, capsys):
        target = tmp_path / "never-created"
        assert main(["--cache-dir", str(target), "cache", "clear"]) == 0
        out = capsys.readouterr().out
        assert out.count("removed 0") == 3
        assert not target.exists()

    def test_clear_only_checkpoints_choice(self, tmp_path, capsys):
        target = tmp_path / "cache"
        assert main(["--cache-dir", str(target),
                     "cache", "clear", "--only", "checkpoints"]) == 0
        out = capsys.readouterr().out
        assert "removed 0" in out and "checkpoints" in out

    def test_clear_removes_every_entry(self, tmp_path, capsys):
        target = tmp_path / "cache"
        self.run_plan(target)
        assert list(target.glob("planning/*/*.pkl"))
        capsys.readouterr()
        assert main(["--cache-dir", str(target), "cache", "clear"]) == 0
        out = capsys.readouterr().out
        assert "removed" in out
        assert not list(target.glob("planning/*/*.pkl"))
        # Idempotent: clearing an empty cache is a no-op, not an error.
        assert main(["--cache-dir", str(target), "cache", "clear"]) == 0
        assert "removed 0" in capsys.readouterr().out

    def test_cache_requires_subcommand(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["cache"])


class TestWorkerServeParser:
    def test_serve_defaults(self):
        args = make_parser().parse_args(["worker", "serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 7601
        assert args.fail_after_tasks == 0

    def test_fault_flags(self):
        args = make_parser().parse_args(
            ["worker", "serve", "--port", "0",
             "--fail-after-tasks", "3", "--fail-mode", "stall"]
        )
        assert args.port == 0
        assert args.fail_after_tasks == 3
        assert args.fail_mode == "stall"

    def test_worker_requires_subcommand(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["worker"])

    def test_bad_fail_mode_rejected(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(
                ["worker", "serve", "--fail-mode", "melt"]
            )


class TestWorkloadRelations:
    def test_mobile_names(self):
        from repro.cli import workload_relations

        relations = workload_relations("mobile", 20, seed=0)
        assert set(relations) == {"table", "calls"}
        assert relations["table"] is relations["calls"]

    def test_tpch_names(self):
        from repro.cli import workload_relations

        relations = workload_relations("tpch", 0, seed=0)
        assert "lineitem" in relations and "orders" in relations

    def test_unknown_workload(self):
        from repro.cli import workload_relations

        with pytest.raises(SystemExit):
            workload_relations("spark", 0, seed=0)
