"""Tests for the result-table renderer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reporting.tables import ResultTable, _cell


class TestConstruction:
    def test_needs_columns(self):
        with pytest.raises(ValueError):
            ResultTable("t", [])

    def test_arity_enforced(self):
        table = ResultTable("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add(1)
        with pytest.raises(ValueError):
            table.add(1, 2, 3)

    def test_len_counts_rows(self):
        table = ResultTable("t", ["a"])
        assert len(table) == 0
        table.add(1)
        table.add(2)
        assert len(table) == 2

    def test_column_access(self):
        table = ResultTable("t", ["x", "y"])
        table.add(1, "p")
        table.add(2, "q")
        assert table.column("x") == [1, 2]
        assert table.column("y") == ["p", "q"]
        with pytest.raises(KeyError):
            table.column("z")


class TestTextRendering:
    def test_header_and_rows(self):
        table = ResultTable("My title", ["name", "value"])
        table.add("alpha", 10)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "My title"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) == {"-"}
        assert "alpha" in lines[3]

    def test_columns_stay_aligned(self):
        table = ResultTable("t", ["short", "column"])
        table.add("a-very-long-cell-value", 1)
        table.add("b", 22222)
        lines = table.render().splitlines()
        # The numeric column starts at the same offset in every data row.
        first = lines[3].index("1")
        second = lines[4].index("22222")
        assert first == second

    def test_float_formatting(self):
        assert _cell(1234.56) == "1235"
        assert _cell(12.3456) == "12.3"
        assert _cell(0.00123) == "0.00123"
        assert _cell("text") == "text"
        assert _cell(7) == "7"


class TestMarkdownRendering:
    def test_shape(self):
        table = ResultTable("Result", ["a", "b"])
        table.add(1, 2)
        md = table.render_markdown()
        lines = md.splitlines()
        assert lines[0] == "**Result**"
        assert lines[2] == "| a | b |"
        assert lines[3] == "|---|---|"
        assert lines[4] == "| 1 | 2 |"

    def test_row_per_add(self):
        table = ResultTable("t", ["a"])
        for i in range(5):
            table.add(i)
        assert len(table.render_markdown().splitlines()) == 4 + 5


class TestSave:
    def test_save_text_and_markdown(self, tmp_path):
        table = ResultTable("t", ["a"])
        table.add(1)
        text_path = tmp_path / "out" / "t.txt"
        md_path = tmp_path / "out" / "t.md"
        table.save(text_path)
        table.save(md_path, markdown=True)
        assert text_path.read_text().startswith("t\n")
        assert md_path.read_text().startswith("**t**")


class TestProperties:
    @given(
        st.lists(
            st.tuples(
                st.text(
                    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                    min_size=1,
                    max_size=8,
                ),
                st.integers(),
                st.floats(allow_nan=False, allow_infinity=False),
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_row_count_preserved_in_both_renderings(self, rows):
        table = ResultTable("t", ["s", "i", "f"])
        for row in rows:
            table.add(*row)
        # text: title + header + dashes + rows
        assert len(table.render().splitlines()) == 3 + len(rows)
        # markdown: title + blank + header + separator + rows
        assert len(table.render_markdown().splitlines()) == 4 + len(rows)
