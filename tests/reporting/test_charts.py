"""Tests for the ASCII chart renderers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reporting.charts import bar_chart, line_chart, sparkline


class TestBarChart:
    def test_basic_shape(self):
        chart = bar_chart(
            "Fig 9 (Q1)",
            ["20GB", "100GB"],
            {"ours": [10.0, 50.0], "hive": [20.0, 100.0]},
        )
        lines = chart.splitlines()
        assert lines[0] == "Fig 9 (Q1)"
        assert "20GB:" in chart and "100GB:" in chart
        assert chart.count("|") == 4  # one bar line per (category, series)

    def test_bars_scale_with_values(self):
        chart = bar_chart(
            "t", ["c"], {"small": [1.0], "big": [10.0]}, width=40
        )
        small_line = next(l for l in chart.splitlines() if "small" in l)
        big_line = next(l for l in chart.splitlines() if "big" in l)
        assert big_line.count("#") == 40
        assert 2 <= small_line.count("#") <= 6

    def test_zero_values_have_no_bar(self):
        chart = bar_chart("t", ["c"], {"zero": [0.0], "one": [5.0]})
        zero_line = next(l for l in chart.splitlines() if "zero" in l)
        assert "#" not in zero_line

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart("t", [], {"a": []})
        with pytest.raises(ValueError):
            bar_chart("t", ["c1", "c2"], {"a": [1.0]})

    def test_unit_suffix(self):
        chart = bar_chart("t", ["c"], {"a": [3.0]}, unit="s")
        assert "3s" in chart


class TestLineChart:
    def test_basic_shape(self):
        chart = line_chart(
            "Fig 6", [1, 2, 4, 8], {"time": [10.0, 6.0, 4.0, 5.0]},
            height=8, width=30,
        )
        lines = chart.splitlines()
        assert lines[0] == "Fig 6"
        assert "#=time" in lines[1]
        # 8 grid rows + title + legend + axis + labels
        assert len(lines) == 8 + 4

    def test_extremes_annotated(self):
        chart = line_chart("t", [1, 10], {"y": [5.0, 50.0]})
        assert "50" in chart
        assert "5" in chart
        assert chart.splitlines()[-1].strip().startswith("1")

    def test_marks_present_per_series(self):
        chart = line_chart(
            "t", [1, 2, 3],
            {"a": [1.0, 2.0, 3.0], "b": [3.0, 2.0, 1.0]},
        )
        grid = "\n".join(chart.splitlines()[2:])
        assert "#" in grid and "*" in grid

    def test_log_x(self):
        chart = line_chart(
            "t", [1, 10, 100, 1000], {"y": [1.0, 2.0, 3.0, 4.0]},
            width=30, log_x=True,
        )
        # With log spacing the marks are evenly spread; the second point
        # sits near a third of the width, not at 1%.
        rows = chart.splitlines()[2:-2]
        columns = sorted(
            line.index("#") - line.index("|") - 1
            for line in rows
            if "#" in line
        )
        gaps = [b - a for a, b in zip(columns, columns[1:])]
        assert max(gaps) - min(gaps) <= 2

    def test_log_x_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            line_chart("t", [0, 1], {"y": [1.0, 2.0]}, log_x=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart("t", [], {})
        with pytest.raises(ValueError):
            line_chart("t", [1, 2], {"y": [1.0]})

    def test_flat_series_does_not_crash(self):
        chart = line_chart("t", [1, 2, 3], {"y": [5.0, 5.0, 5.0]})
        assert "#" in chart


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_monotone_shape(self):
        from repro.reporting.charts import BLOCKS

        spark = sparkline([1, 2, 3, 4, 5])
        assert len(spark) == 5
        heights = [BLOCKS.index(c) for c in spark]
        assert heights == sorted(heights)
        assert heights[0] < heights[-1]

    def test_flat(self):
        spark = sparkline([3, 3, 3])
        assert len(set(spark)) == 1

    @given(st.lists(st.floats(min_value=-1e9, max_value=1e9, allow_nan=False), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_length_and_charset(self, values):
        spark = sparkline(values)
        assert len(spark) == len(values)
        assert " " not in spark
